#include "graph/landmark_oracle.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/assert.hpp"
#include "runtime/scratch_pool.hpp"

namespace nav::graph {

namespace {

// Per-thread Dist scratch for the exact-ball patch BFS: the bounded kernel
// writes the FULL span (unreached nodes get kInfDist), so it must not run
// directly on the row being materialised.
struct PatchScratch {
  std::vector<Dist> row;
};

NodeId max_degree_node(const Graph& g) {
  NodeId best = 0;
  std::size_t best_deg = g.neighbors(0).size();
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    const std::size_t deg = g.neighbors(u).size();
    if (deg > best_deg) {
      best = u;
      best_deg = deg;
    }
  }
  return best;
}

std::vector<NodeId> select_by_degree(const Graph& g, std::size_t k) {
  std::vector<NodeId> nodes(g.num_nodes());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::partial_sort(nodes.begin(), nodes.begin() + static_cast<long>(k),
                    nodes.end(), [&](NodeId a, NodeId b) {
                      const std::size_t da = g.neighbors(a).size();
                      const std::size_t db = g.neighbors(b).size();
                      return da != db ? da > db : a < b;
                    });
  nodes.resize(k);
  return nodes;
}

}  // namespace

LandmarkOracle::LandmarkOracle(const Graph& g, LandmarkOptions options)
    : graph_(g),
      options_(options),
      arena_(std::max<std::size_t>(options.row_cache_slots, 1) + 1,
             g.num_nodes()) {
  NAV_REQUIRE(g.num_nodes() > 0, "landmark oracle needs a non-empty graph");
  NAV_REQUIRE(options_.k >= 1, "landmark oracle needs k >= 1");
  const std::size_t n = g.num_nodes();
  const std::size_t k = std::min(options_.k, n);
  rows_ = std::shared_ptr<Dist[]>(new Dist[k * n]);
  ParallelBfs engine(options_.policy);

  if (options_.selection == LandmarkSelection::kDegree) {
    landmarks_ = select_by_degree(g, k);
    for (std::size_t i = 0; i < k; ++i) {
      engine.distances_into(g, landmarks_[i], {rows_.get() + i * n, n});
    }
    return;
  }

  // Farthest-point traversal: seed at the max-degree node, then repeatedly
  // take the node farthest from the set so far (each new landmark's sweep is
  // also its stored row, so selection costs nothing extra). kInfDist in
  // min_dist means "no landmark reaches this node yet" — unreached
  // components win the argmax and get their own landmark first.
  landmarks_.reserve(k);
  landmarks_.push_back(max_degree_node(g));
  engine.distances_into(g, landmarks_[0], {rows_.get(), n});
  std::vector<Dist> min_dist(rows_.get(), rows_.get() + n);
  for (std::size_t i = 1; i < k; ++i) {
    NodeId next = 0;
    Dist best = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (min_dist[u] > best) {  // first max wins: ties break to smaller id
        best = min_dist[u];
        next = u;
      }
    }
    if (best == 0) {  // every node IS a landmark already
      landmarks_.resize(i);
      break;
    }
    landmarks_.push_back(next);
    Dist* const row = rows_.get() + i * n;
    engine.distances_into(g, next, {row, n});
    for (NodeId u = 0; u < n; ++u) {
      min_dist[u] = std::min(min_dist[u], row[u]);
    }
  }
}

void LandmarkOracle::materialize_row(NodeId target,
                                     std::span<Dist> row) const {
  const std::size_t n = graph_.num_nodes();
  const Dist* const rows = rows_.get();
  std::fill(row.begin(), row.end(), kInfDist);
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    const Dist* const lrow = rows + i * n;
    const Dist to_target = lrow[target];
    if (to_target == kInfDist) continue;  // landmark in another component
    for (std::size_t u = 0; u < n; ++u) {
      const Dist to_landmark = lrow[u];
      if (to_landmark == kInfDist) continue;
      row[u] = std::min(row[u], to_landmark + to_target);
    }
  }
  // Exact-ball patch: overlay the true distances within exact_radius of the
  // target. The estimate is an upper bound, so a min-merge IS replacement
  // inside the ball — and it anchors row[target] = 0 even at radius 0.
  auto& scratch = nav::thread_scratch<PatchScratch>();
  if (scratch.row.size() < n) scratch.row.resize(n);
  const std::span<Dist> patch{scratch.row.data(), n};
  local_bfs_workspace().distances_into(graph_, target, patch,
                                       options_.exact_radius);
  for (std::size_t u = 0; u < n; ++u) {
    if (patch[u] != kInfDist) row[u] = std::min(row[u], patch[u]);
  }
}

std::shared_ptr<Dist> LandmarkOracle::acquire_slot() const {
  std::shared_ptr<Dist> slot = arena_.try_acquire();
  if (slot == nullptr) {  // every slot pinned: spill to a plain heap row
    slot = std::shared_ptr<Dist>(new Dist[graph_.num_nodes()],
                                 std::default_delete<Dist[]>());
  }
  return slot;
}

Dist LandmarkOracle::distance(NodeId u, NodeId target) const {
  // Via the row cache so point queries and row queries agree exactly
  // (including the exact-ball patch).
  return (*distances_to(target))[u];
}

DistVecPtr LandmarkOracle::distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  const std::size_t n = graph_.num_nodes();
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.row;  // refcount copy: the zero-allocation warm hit
    }
    ++misses_;
  }
  std::shared_ptr<Dist> slot = acquire_slot();
  materialize_row(target, {slot.get(), n});
  DistVecPtr row{std::move(slot), n};
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.row;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), row});
  const std::size_t capacity = std::max<std::size_t>(options_.row_cache_slots, 1);
  while (cache_.size() > capacity) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  return row;
}

}  // namespace nav::graph
