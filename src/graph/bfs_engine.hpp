// bfs_engine.hpp — the reusable, allocation-free BFS engine.
//
// Every subsystem bottoms out in unweighted BFS: the distance oracle runs
// one sweep per distinct target, the Theorem 4 ball scheme samples from
// B(u, 2^k) millions of times, diameter/pathshape sweep all sources, and
// lookahead routers multiply distance queries per hop. The free functions in
// bfs.hpp used to heap-allocate and zero-fill O(n) state per call; they are
// now thin wrappers over this engine, and the hot paths (oracle, schemes,
// workloads, decomposition measures) call it directly.
//
// Design:
//
//   * BfsWorkspace owns grow-only scratch (a queue, epoch-stamped visited /
//     marker arrays, frontier bitmaps). prepare() opens a fresh traversal in
//     O(1) by bumping a 16-bit generation counter — a node is visited iff
//     its stamp equals the current epoch, so nothing is cleared between
//     traversals. On epoch wraparound (every 65535 prepares) the stamp
//     arrays are re-zeroed once, keeping the reset amortised O(1) and the
//     stale-stamp collision impossible (tested by a >2^16-iteration stress).
//
//   * Dense kernels (distances_into / multi_source_into) write straight into
//     a caller-provided span — e.g. an arena slot of the distance oracle —
//     using the output itself as the visited set. A warm workspace performs
//     ZERO heap allocations per sweep (proven by the counting-allocator
//     test).
//
//   * distances_into with radius == kInfDist runs the direction-optimizing
//     kernel (Beamer et al., "Direction-Optimizing Breadth-First Search"):
//     when the frontier's out-edges exceed 1/alpha of the unexplored edges
//     the sweep flips to bottom-up — every unvisited node scans its own
//     neighbours for a frontier member and stops at the first hit — and
//     flips back once the frontier falls under n/beta. On low-diameter
//     families (hypercube, G(n,p)) where frontiers explode this is worth
//     2-4x; distances are bit-identical to the scalar kernel by level
//     synchronisation (differential-tested across all families).
//
//   * Sparse kernels (ball / eccentricity / farthest) never touch O(n)
//     output: cost is O(|visited| + |edges scanned|) via the epoch stamps.
//     This is what makes the ball scheme's inner sampling loop cheap.
//
//   * The visitation primitives (prepare / try_visit / visited / mark /
//     marked / queue) are public so specialised traversals — bag-length
//     measurement in decomposition/measures.cpp, the workload ball sampler —
//     build on the same scratch instead of growing their own.
//
// Workspaces are pooled per worker thread: call local_bfs_workspace() (built
// on runtime/scratch_pool.hpp) from any thread, including nav::parallel_for
// bodies — each worker reuses its private instance with no synchronisation.
// A workspace is NOT re-entrant: one traversal at a time per instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "runtime/worker_team.hpp"

namespace nav::graph {

class BfsWorkspace {
 public:
  // ---- lifecycle --------------------------------------------------------
  /// Opens a fresh traversal over a graph of (at least) n nodes: bumps the
  /// epoch and clears the queue. O(1) amortised; allocates only when n grows
  /// beyond every previous prepare on this instance.
  void prepare(std::size_t n);

  /// Current generation counter (diagnostics; lets the wraparound stress
  /// test assert it actually wrapped).
  [[nodiscard]] std::uint16_t epoch() const noexcept { return epoch_; }

  /// Nodes this workspace can traverse without reallocating.
  [[nodiscard]] std::size_t capacity() const noexcept { return stamp_.size(); }

  // ---- visitation primitives (valid between prepares) -------------------
  /// Marks v visited; true iff v was unvisited this epoch.
  bool try_visit(NodeId v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }
  [[nodiscard]] bool visited(NodeId v) const { return stamp_[v] == epoch_; }

  /// Second, independent epoch-scoped marker channel (bag membership,
  /// source sets). Lazily sized on first use; wraps with the visited stamps.
  void mark(NodeId v);
  [[nodiscard]] bool marked(NodeId v) const {
    return v < mark_stamp_.size() && mark_stamp_[v] == epoch_;
  }

  /// Scratch queue for custom traversals (also used by the kernels below;
  /// contents are invalidated by any kernel call on this workspace).
  [[nodiscard]] std::vector<NodeId>& queue() noexcept { return queue_; }

  // ---- dense kernels (write a full distance array) -----------------------
  /// Which kernel the last dense sweep on this workspace dispatched to —
  /// the observable surface of the sparse/dense cutover (tests pin it).
  enum class SweepKind : std::uint8_t {
    kNone,                 ///< no dense sweep yet
    kScalarBounded,        ///< frontier-bounded scalar kernel (binding radius)
    kScalarFull,           ///< scalar full sweep (graph under the diropt gate)
    kDirectionOptimizing,  ///< Beamer-style hybrid full sweep
  };
  [[nodiscard]] SweepKind last_sweep_kind() const noexcept {
    return last_sweep_kind_;
  }

  /// Cumulative dense sweeps dispatched to `kind` on this workspace since
  /// construction — the per-instance tally behind last_sweep_kind(), and the
  /// surface bench_micro's strict sweep-kind gate cells read. Mirrored into
  /// the process-wide `bfs.sweep_*` registry counters.
  [[nodiscard]] std::uint64_t sweep_count(SweepKind kind) const noexcept {
    return sweep_tally_[static_cast<std::size_t>(kind)];
  }

  /// Single-source distances into out (size n; unreached entries get
  /// kInfDist). radius == kInfDist runs the direction-optimizing full sweep;
  /// a finite radius runs the frontier-bounded scalar kernel (nodes farther
  /// than radius keep kInfDist). A finite radius >= n-1 can never bind (all
  /// finite distances are <= n-1), so it is explicitly promoted to the
  /// unbounded direction-optimizing sweep instead of silently degrading to
  /// a bounded scan of the whole graph — last_sweep_kind() exposes the
  /// decision. Zero allocations once warm.
  void distances_into(const Graph& g, NodeId source, std::span<Dist> out,
                      Dist radius = kInfDist);

  /// The scalar reference kernel behind distances_into — public so
  /// differential tests can pin the direction-optimizing kernel against it.
  void distances_into_scalar(const Graph& g, NodeId source, std::span<Dist> out,
                             Dist radius = kInfDist);

  /// Multi-source distances (distance to the nearest source) into out.
  void multi_source_into(const Graph& g, std::span<const NodeId> sources,
                         std::span<Dist> out);

  // ---- sparse kernels (cost O(|ball|), no O(n) output) -------------------
  /// The ball B(center, radius) in BFS (distance, id) order.
  struct BallView {
    /// Members in discovery order, center first. Points into the workspace
    /// queue: valid until the next kernel call or prepare on this instance.
    std::span<const NodeId> order;
    /// True when the ball swallowed the whole graph at depth <= radius; the
    /// expansion stops there (further levels cannot add members).
    bool whole_graph = false;
    /// The depth at which that happened (an eccentricity upper bound for
    /// center); 0 when whole_graph is false.
    Dist exhausted_depth = 0;
  };
  [[nodiscard]] BallView ball(const Graph& g, NodeId center, Dist radius);

  /// max { dist(source, v) : v reachable } without materialising distances.
  [[nodiscard]] Dist eccentricity(const Graph& g, NodeId source);

  /// Farthest reachable node (smallest id among ties) and its distance.
  [[nodiscard]] FarthestResult farthest(const Graph& g, NodeId source);

 private:
  void diropt_into(const Graph& g, NodeId source, std::span<Dist> out);
  void ensure_bitmaps(std::size_t words);

  std::vector<std::uint16_t> stamp_;       // visited iff stamp_[v] == epoch_
  std::vector<std::uint16_t> mark_stamp_;  // marked  iff mark_stamp_[v] == epoch_
  std::uint16_t epoch_ = 0;
  SweepKind last_sweep_kind_ = SweepKind::kNone;
  std::uint64_t sweep_tally_[4] = {0, 0, 0, 0};  // indexed by SweepKind
  std::vector<NodeId> queue_;
  // Direction-optimizing scratch: current/next frontier and visited bitmaps.
  std::vector<std::uint64_t> front_bits_, next_bits_, visited_bits_;
};

/// The calling thread's pooled workspace (one per worker thread, via
/// runtime/scratch_pool.hpp). Safe from parallel_for bodies; never hold the
/// reference across a point where the same thread may re-enter the engine.
[[nodiscard]] BfsWorkspace& local_bfs_workspace();

// ---- multi-worker sweeps -------------------------------------------------

/// How much of the machine a parallel consumer may use. The one knob the
/// parallel sweep, the DistanceMatrix build, and the oracle prefetch waves
/// all hang off: num_workers == 0 means hardware concurrency, 1 forces the
/// scalar/serial path (the differential reference schedule). The remaining
/// fields are adaptivity thresholds with production defaults; tests lower
/// them to force every parallel code path onto small graphs.
struct ParallelPolicy {
  /// Worker lanes (0 = one per hardware thread; 1 = serial).
  std::size_t num_workers = 0;
  /// Levels with fewer frontier nodes than this expand inline on the
  /// coordinating lane — fork/join costs more than it saves on tiny levels.
  std::size_t serial_frontier_cutoff = 1024;
  /// Graphs under this many nodes skip the bottom-up machinery entirely
  /// (mirrors the scalar engine's direction-optimizing gate).
  std::size_t min_diropt_nodes = 1024;

  /// num_workers resolved against the hardware (always >= 1).
  [[nodiscard]] std::size_t resolved_workers() const noexcept;

  /// The serial schedule: the differential-test and bench baseline.
  [[nodiscard]] static ParallelPolicy serial() noexcept {
    ParallelPolicy policy;
    policy.num_workers = 1;
    return policy;
  }
};

/// Multi-worker direction-optimizing BFS over a private WorkerTeam.
///
/// One sweep fans its levels across policy.num_workers lanes: top-down
/// levels are frontier-chunked (lanes claim fixed-size chunks off a shared
/// atomic counter — the parallel_for_dynamic idiom — and claim nodes with a
/// CAS on the output distance), bottom-up levels are range-split over a
/// bitmap frontier (each lane owns a contiguous word range and tests 64
/// unvisited candidates per uint64_t word, scanning each candidate's
/// adjacency for a frontier parent). Every level ends at a barrier and the
/// next frontier is rebuilt from its bitmap in ascending node order — a
/// deterministic merge, so internal state never depends on lane
/// interleaving.
///
/// Determinism: distances are level-synchronous, so the output is
/// bit-identical to BfsWorkspace::distances_into_scalar for EVERY worker
/// count, radius, and graph — the parallel_bfs differential suite pins this
/// across all registered families. With one resolved worker the sweep
/// delegates to the scalar engine outright.
///
/// A warm instance performs zero heap allocations per sweep (scratch is
/// grow-only, the team dispatches through raw function pointers); the only
/// exempt moment is the lazy worker-team startup on the first parallel run.
/// Not re-entrant: one sweep at a time per instance. Instances are safe to
/// use from inside ThreadPool tasks (the team owns private threads).
class ParallelBfs {
 public:
  explicit ParallelBfs(ParallelPolicy policy = {});

  /// Lanes this instance fans out to (>= 1).
  [[nodiscard]] std::size_t workers() const noexcept { return team_.lanes(); }

  /// The underlying fork-join team — exposed for lane-failure injection
  /// (WorkerTeam::fail_lane) in resilience tests and benches.
  [[nodiscard]] WorkerTeam& team() noexcept { return team_; }
  [[nodiscard]] const ParallelPolicy& policy() const noexcept {
    return policy_;
  }

  /// Single-source distances into out (size n; unreached entries keep
  /// kInfDist), frontier-bounded when radius binds — the parallel equivalent
  /// of BfsWorkspace::distances_into, bit-identical to it (and to the scalar
  /// reference) at every worker count.
  void distances_into(const Graph& g, NodeId source, std::span<Dist> out,
                      Dist radius = kInfDist);

 private:
  struct LaneStats {
    std::uint64_t next_count = 0;
    std::uint64_t next_edges = 0;
    char pad[48];  // keep lanes off each other's cache line
  };

  void ensure_capacity(std::size_t n, std::size_t words);
  void rebuild_frontier(std::size_t words, std::size_t next_count);

  ParallelPolicy policy_;
  WorkerTeam team_;
  BfsWorkspace serial_ws_;  // the one-worker / small-graph delegate

  std::vector<NodeId> frontier_;  // current frontier, ascending node order
  std::size_t frontier_count_ = 0;
  std::vector<std::uint64_t> front_bits_, next_bits_, visited_bits_;
  std::vector<LaneStats> lane_stats_;
  std::vector<std::size_t> lane_offsets_;  // frontier-fill write positions
  std::atomic<std::size_t> chunk_next_{0};
};

/// Checkout pool of shared ParallelBfs instances at the default (hardware)
/// policy — for consumers that need an occasional parallel sweep without
/// owning a worker team (oracle prefetch waves). Steady-state checkouts
/// allocate nothing; instances keep their teams and scratch warm.
[[nodiscard]] ParallelBfs& shared_parallel_bfs();

// ---- pre-engine reference implementations -------------------------------
// The seed repo's allocating scalar kernels, kept verbatim as the
// differential-test baseline and the bench_micro "pre-PR" comparison point.
// New code should use BfsWorkspace (or the bfs.hpp wrappers).

/// Allocating scalar BFS; bit-identical output to distances_into.
[[nodiscard]] std::vector<Dist> bfs_distances_reference(const Graph& g,
                                                        NodeId source,
                                                        Dist radius = kInfDist);

/// Allocating per-call-visited ball; identical order to BfsWorkspace::ball.
[[nodiscard]] std::vector<NodeId> ball_reference(const Graph& g, NodeId center,
                                                 Dist radius);

}  // namespace nav::graph
