// bfs_engine.hpp — the reusable, allocation-free BFS engine.
//
// Every subsystem bottoms out in unweighted BFS: the distance oracle runs
// one sweep per distinct target, the Theorem 4 ball scheme samples from
// B(u, 2^k) millions of times, diameter/pathshape sweep all sources, and
// lookahead routers multiply distance queries per hop. The free functions in
// bfs.hpp used to heap-allocate and zero-fill O(n) state per call; they are
// now thin wrappers over this engine, and the hot paths (oracle, schemes,
// workloads, decomposition measures) call it directly.
//
// Design:
//
//   * BfsWorkspace owns grow-only scratch (a queue, epoch-stamped visited /
//     marker arrays, frontier bitmaps). prepare() opens a fresh traversal in
//     O(1) by bumping a 16-bit generation counter — a node is visited iff
//     its stamp equals the current epoch, so nothing is cleared between
//     traversals. On epoch wraparound (every 65535 prepares) the stamp
//     arrays are re-zeroed once, keeping the reset amortised O(1) and the
//     stale-stamp collision impossible (tested by a >2^16-iteration stress).
//
//   * Dense kernels (distances_into / multi_source_into) write straight into
//     a caller-provided span — e.g. an arena slot of the distance oracle —
//     using the output itself as the visited set. A warm workspace performs
//     ZERO heap allocations per sweep (proven by the counting-allocator
//     test).
//
//   * distances_into with radius == kInfDist runs the direction-optimizing
//     kernel (Beamer et al., "Direction-Optimizing Breadth-First Search"):
//     when the frontier's out-edges exceed 1/alpha of the unexplored edges
//     the sweep flips to bottom-up — every unvisited node scans its own
//     neighbours for a frontier member and stops at the first hit — and
//     flips back once the frontier falls under n/beta. On low-diameter
//     families (hypercube, G(n,p)) where frontiers explode this is worth
//     2-4x; distances are bit-identical to the scalar kernel by level
//     synchronisation (differential-tested across all families).
//
//   * Sparse kernels (ball / eccentricity / farthest) never touch O(n)
//     output: cost is O(|visited| + |edges scanned|) via the epoch stamps.
//     This is what makes the ball scheme's inner sampling loop cheap.
//
//   * The visitation primitives (prepare / try_visit / visited / mark /
//     marked / queue) are public so specialised traversals — bag-length
//     measurement in decomposition/measures.cpp, the workload ball sampler —
//     build on the same scratch instead of growing their own.
//
// Workspaces are pooled per worker thread: call local_bfs_workspace() (built
// on runtime/scratch_pool.hpp) from any thread, including nav::parallel_for
// bodies — each worker reuses its private instance with no synchronisation.
// A workspace is NOT re-entrant: one traversal at a time per instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nav::graph {

class BfsWorkspace {
 public:
  // ---- lifecycle --------------------------------------------------------
  /// Opens a fresh traversal over a graph of (at least) n nodes: bumps the
  /// epoch and clears the queue. O(1) amortised; allocates only when n grows
  /// beyond every previous prepare on this instance.
  void prepare(std::size_t n);

  /// Current generation counter (diagnostics; lets the wraparound stress
  /// test assert it actually wrapped).
  [[nodiscard]] std::uint16_t epoch() const noexcept { return epoch_; }

  /// Nodes this workspace can traverse without reallocating.
  [[nodiscard]] std::size_t capacity() const noexcept { return stamp_.size(); }

  // ---- visitation primitives (valid between prepares) -------------------
  /// Marks v visited; true iff v was unvisited this epoch.
  bool try_visit(NodeId v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }
  [[nodiscard]] bool visited(NodeId v) const { return stamp_[v] == epoch_; }

  /// Second, independent epoch-scoped marker channel (bag membership,
  /// source sets). Lazily sized on first use; wraps with the visited stamps.
  void mark(NodeId v);
  [[nodiscard]] bool marked(NodeId v) const {
    return v < mark_stamp_.size() && mark_stamp_[v] == epoch_;
  }

  /// Scratch queue for custom traversals (also used by the kernels below;
  /// contents are invalidated by any kernel call on this workspace).
  [[nodiscard]] std::vector<NodeId>& queue() noexcept { return queue_; }

  // ---- dense kernels (write a full distance array) -----------------------
  /// Single-source distances into out (size n; unreached entries get
  /// kInfDist). radius == kInfDist runs the direction-optimizing full sweep;
  /// a finite radius runs the frontier-bounded scalar kernel (nodes farther
  /// than radius keep kInfDist). Zero allocations once warm.
  void distances_into(const Graph& g, NodeId source, std::span<Dist> out,
                      Dist radius = kInfDist);

  /// The scalar reference kernel behind distances_into — public so
  /// differential tests can pin the direction-optimizing kernel against it.
  void distances_into_scalar(const Graph& g, NodeId source, std::span<Dist> out,
                             Dist radius = kInfDist);

  /// Multi-source distances (distance to the nearest source) into out.
  void multi_source_into(const Graph& g, std::span<const NodeId> sources,
                         std::span<Dist> out);

  // ---- sparse kernels (cost O(|ball|), no O(n) output) -------------------
  /// The ball B(center, radius) in BFS (distance, id) order.
  struct BallView {
    /// Members in discovery order, center first. Points into the workspace
    /// queue: valid until the next kernel call or prepare on this instance.
    std::span<const NodeId> order;
    /// True when the ball swallowed the whole graph at depth <= radius; the
    /// expansion stops there (further levels cannot add members).
    bool whole_graph = false;
    /// The depth at which that happened (an eccentricity upper bound for
    /// center); 0 when whole_graph is false.
    Dist exhausted_depth = 0;
  };
  [[nodiscard]] BallView ball(const Graph& g, NodeId center, Dist radius);

  /// max { dist(source, v) : v reachable } without materialising distances.
  [[nodiscard]] Dist eccentricity(const Graph& g, NodeId source);

  /// Farthest reachable node (smallest id among ties) and its distance.
  [[nodiscard]] FarthestResult farthest(const Graph& g, NodeId source);

 private:
  void diropt_into(const Graph& g, NodeId source, std::span<Dist> out);
  void ensure_bitmaps(std::size_t words);

  std::vector<std::uint16_t> stamp_;       // visited iff stamp_[v] == epoch_
  std::vector<std::uint16_t> mark_stamp_;  // marked  iff mark_stamp_[v] == epoch_
  std::uint16_t epoch_ = 0;
  std::vector<NodeId> queue_;
  // Direction-optimizing scratch: current/next frontier and visited bitmaps.
  std::vector<std::uint64_t> front_bits_, next_bits_, visited_bits_;
};

/// The calling thread's pooled workspace (one per worker thread, via
/// runtime/scratch_pool.hpp). Safe from parallel_for bodies; never hold the
/// reference across a point where the same thread may re-enter the engine.
[[nodiscard]] BfsWorkspace& local_bfs_workspace();

// ---- pre-engine reference implementations -------------------------------
// The seed repo's allocating scalar kernels, kept verbatim as the
// differential-test baseline and the bench_micro "pre-PR" comparison point.
// New code should use BfsWorkspace (or the bfs.hpp wrappers).

/// Allocating scalar BFS; bit-identical output to distances_into.
[[nodiscard]] std::vector<Dist> bfs_distances_reference(const Graph& g,
                                                        NodeId source,
                                                        Dist radius = kInfDist);

/// Allocating per-call-visited ball; identical order to BfsWorkspace::ball.
[[nodiscard]] std::vector<NodeId> ball_reference(const Graph& g, NodeId center,
                                                 Dist radius);

}  // namespace nav::graph
