// diameter.hpp — eccentricities and graph diameter.
//
// Greedy routing takes at most dist(s,t) <= diam(G) steps (the distance to the
// target strictly decreases each step), so the diameter is both a sanity bound
// checked by tests and the trivial baseline reported in experiment tables.
#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nav::graph {

/// Exact eccentricity of every node: one BFS per node, parallelised over
/// sources. O(n·m) — intended for n up to a few tens of thousands.
[[nodiscard]] std::vector<Dist> eccentricities(const Graph& g);

/// Exact diameter via all-source BFS (parallel). Requires connected graph.
[[nodiscard]] Dist exact_diameter(const Graph& g);

/// Double-sweep lower bound: BFS from an arbitrary node, then BFS from the
/// farthest node found. Exact on trees; a lower bound in general. O(m).
[[nodiscard]] Dist double_sweep_lower_bound(const Graph& g);

/// A pair of far-apart nodes (the double-sweep endpoints). These are the
/// default "hard" source/target pairs in greedy-diameter estimation.
struct NodePair {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  Dist distance = 0;
};
[[nodiscard]] NodePair peripheral_pair(const Graph& g);

}  // namespace nav::graph
