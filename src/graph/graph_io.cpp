#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nav::graph {

void write_graph(std::ostream& out, const Graph& g) {
  out << "nav-graph 1\n";
  out << "n " << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edge_list()) out << u << ' ' << v << "\n";
}

Graph read_graph(std::istream& in) {
  std::string line;
  auto next_content_line = [&](std::string& dst) -> bool {
    while (std::getline(in, dst)) {
      const auto first = dst.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;   // blank
      if (dst[first] == '#') continue;            // comment
      return true;
    }
    return false;
  };

  NAV_REQUIRE(next_content_line(line), "graph stream is empty");
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    NAV_REQUIRE(magic == "nav-graph" && version == 1,
                "bad header, expected 'nav-graph 1'");
  }
  NAV_REQUIRE(next_content_line(line), "missing 'n <count>' line");
  std::uint64_t n = 0;
  {
    std::istringstream decl(line);
    std::string key;
    decl >> key >> n;
    NAV_REQUIRE(key == "n" && !decl.fail(), "bad 'n <count>' line");
    NAV_REQUIRE(n <= kNoNode, "node count too large");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  while (next_content_line(line)) {
    std::istringstream edge(line);
    std::uint64_t u = 0, v = 0;
    edge >> u >> v;
    NAV_REQUIRE(!edge.fail(), "bad edge line: " + line);
    NAV_REQUIRE(u < n && v < n, "edge endpoint out of range in: " + line);
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph(static_cast<NodeId>(n), std::move(edges));
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  write_graph(file, g);
  if (!file) throw std::runtime_error("write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(file);
}

}  // namespace nav::graph
