#include "graph/graph_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/connectivity.hpp"

namespace nav::graph {

void write_graph(std::ostream& out, const Graph& g) {
  out << "nav-graph 1\n";
  out << "n " << g.num_nodes() << "\n";
  for (const auto& [u, v] : g.edge_list()) out << u << ' ' << v << "\n";
}

namespace {

// Line-numbered scanner shared by every dialect parser: tracks the physical
// line of each content line so malformed input reports "<source>:<line>:"
// instead of a positionless message.
class LineScanner {
 public:
  LineScanner(std::istream& in, const std::string& name)
      : in_(in), name_(name) {}

  /// Next non-blank, non-'#' line; false at end of input.
  bool next(std::string& dst) {
    while (std::getline(in_, dst)) {
      ++line_no_;
      const auto first = dst.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;  // blank
      if (dst[first] == '#') continue;           // comment
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_no_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument(name_ + ":" + std::to_string(line_no_) +
                                ": " + message);
  }

 private:
  std::istream& in_;
  const std::string& name_;
  std::size_t line_no_ = 0;
};

/// Whitespace-splits `line` into at most 8 tokens (more than any dialect
/// needs; excess tokens are an error the callers detect by count).
std::size_t tokenize(const std::string& line, std::string_view* out,
                     std::size_t max_tokens) {
  std::size_t count = 0;
  std::size_t i = 0;
  const std::size_t size = line.size();
  while (i < size) {
    while (i < size && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= size) break;
    const std::size_t start = i;
    while (i < size && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') {
      ++i;
    }
    if (count < max_tokens) out[count] = {line.data() + start, i - start};
    ++count;
  }
  return count;
}

std::uint64_t parse_id(std::string_view token, const LineScanner& scan,
                       const char* what) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (token.empty() || ec != std::errc() || end != token.data() + token.size()) {
    scan.fail(std::string("bad ") + what + " '" + std::string(token) + "'");
  }
  return value;
}

struct ParsedEdges {
  std::uint64_t n = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t self_loops = 0;
};

/// Native "nav-graph 1" dialect. `first_line` is the already-read header.
/// tolerate_self_loops: load_edge_list drops and counts them; read_graph
/// keeps them so the Graph constructor rejects as before.
ParsedEdges parse_nav_graph(LineScanner& scan, const std::string& first_line,
                            bool tolerate_self_loops) {
  std::string_view tok[4];
  std::size_t count = tokenize(first_line, tok, 4);
  if (count != 2 || tok[0] != "nav-graph" || tok[1] != "1") {
    scan.fail("bad header, expected 'nav-graph 1'");
  }
  std::string line;
  if (!scan.next(line)) scan.fail("missing 'n <count>' line");
  count = tokenize(line, tok, 4);
  if (count != 2 || tok[0] != "n") scan.fail("bad 'n <count>' line");
  ParsedEdges result;
  result.n = parse_id(tok[1], scan, "node count");
  if (result.n > kNoNode) scan.fail("node count too large");
  while (scan.next(line)) {
    count = tokenize(line, tok, 4);
    if (count != 2) scan.fail("bad edge line (expected '<u> <v>')");
    const std::uint64_t u = parse_id(tok[0], scan, "edge endpoint");
    const std::uint64_t v = parse_id(tok[1], scan, "edge endpoint");
    if (u >= result.n || v >= result.n) {
      scan.fail("edge endpoint out of range (n = " +
                std::to_string(result.n) + ")");
    }
    if (tolerate_self_loops && u == v) {
      ++result.self_loops;
      continue;
    }
    result.edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return result;
}

/// DIMACS dialect: 'c' comments, one 'p <type> <n> <m>' problem line,
/// 'e'/'a' edge lines with 1-based endpoints. The declared edge count is
/// informational only — real corpora routinely misstate it.
ParsedEdges parse_dimacs(LineScanner& scan, std::string first_line) {
  ParsedEdges result;
  bool have_problem = false;
  std::string line = std::move(first_line);
  std::string_view tok[5];
  do {
    const std::size_t count = tokenize(line, tok, 5);
    if (tok[0] == "c") continue;  // comment line
    if (tok[0] == "p") {
      if (have_problem) scan.fail("duplicate problem line");
      if (count != 4) scan.fail("bad problem line (expected 'p <type> <n> <m>')");
      result.n = parse_id(tok[2], scan, "node count");
      parse_id(tok[3], scan, "edge count");  // validated, not enforced
      if (result.n == 0) scan.fail("node count must be >= 1");
      if (result.n > kNoNode) scan.fail("node count too large");
      have_problem = true;
      continue;
    }
    if (tok[0] == "e" || tok[0] == "a") {
      if (!have_problem) scan.fail("edge line before the problem line");
      if (count != 3) scan.fail("bad edge line (expected 'e <u> <v>')");
      const std::uint64_t u = parse_id(tok[1], scan, "edge endpoint");
      const std::uint64_t v = parse_id(tok[2], scan, "edge endpoint");
      if (u < 1 || u > result.n || v < 1 || v > result.n) {
        scan.fail("edge endpoint out of range (ids are 1.." +
                  std::to_string(result.n) + ")");
      }
      if (u == v) {
        ++result.self_loops;
        continue;
      }
      result.edges.emplace_back(static_cast<NodeId>(u - 1),
                                static_cast<NodeId>(v - 1));
      continue;
    }
    scan.fail("unrecognised DIMACS line (expected 'c', 'p', 'e', or 'a')");
  } while (scan.next(line));
  if (!have_problem) scan.fail("missing DIMACS problem line");
  return result;
}

/// SNAP dialect: bare "<u> <v>" pairs with arbitrary non-negative ids,
/// remapped densely in first-seen order.
ParsedEdges parse_snap(LineScanner& scan, const std::string& first_line) {
  ParsedEdges result;
  std::unordered_map<std::uint64_t, NodeId> remap;
  const auto id_of = [&](std::uint64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    if (inserted && remap.size() > static_cast<std::size_t>(kNoNode)) {
      scan.fail("too many distinct node ids");
    }
    return it->second;
  };
  std::string line = first_line;
  std::string_view tok[3];
  do {
    const std::size_t count = tokenize(line, tok, 3);
    if (count != 2) scan.fail("bad edge line (expected '<u> <v>')");
    const std::uint64_t u = parse_id(tok[0], scan, "edge endpoint");
    const std::uint64_t v = parse_id(tok[1], scan, "edge endpoint");
    if (u == v) {
      ++result.self_loops;
      // The endpoint still names a node: isolated unless another edge hits it.
      id_of(u);
      continue;
    }
    const NodeId a = id_of(u);
    const NodeId b = id_of(v);
    result.edges.emplace_back(a, b);
  } while (scan.next(line));
  result.n = remap.size();
  return result;
}

/// Counts parallel edges (the Graph constructor collapses them silently) and
/// finishes the LoadedGraph: construct, then optionally reduce to the
/// largest connected component.
LoadedGraph finish(ParsedEdges parsed, EdgeListFormat format,
                   const EdgeListOptions& options) {
  LoadedGraph result;
  result.format = format;
  result.self_loops = parsed.self_loops;
  {
    std::vector<std::pair<NodeId, NodeId>> normalized = parsed.edges;
    for (auto& [u, v] : normalized) {
      if (u > v) std::swap(u, v);
    }
    std::sort(normalized.begin(), normalized.end());
    for (std::size_t i = 1; i < normalized.size(); ++i) {
      if (normalized[i] == normalized[i - 1]) ++result.duplicate_edges;
    }
  }
  Graph g(static_cast<NodeId>(parsed.n), std::move(parsed.edges));
  result.nodes_loaded = g.num_nodes();
  if (options.keep_largest_component && !is_connected(g)) {
    auto largest = largest_component(g);
    result.nodes_dropped = g.num_nodes() - largest.graph.num_nodes();
    result.graph = std::move(largest.graph);
  } else {
    result.graph = std::move(g);
  }
  return result;
}

}  // namespace

Graph read_graph(std::istream& in) {
  static const std::string kStreamName = "<stream>";
  LineScanner scan(in, kStreamName);
  std::string line;
  if (!scan.next(line)) scan.fail("graph stream is empty");
  ParsedEdges parsed =
      parse_nav_graph(scan, line, /*tolerate_self_loops=*/false);
  return Graph(static_cast<NodeId>(parsed.n), std::move(parsed.edges));
}

LoadedGraph load_edge_list(std::istream& in, const std::string& name,
                           const EdgeListOptions& options) {
  LineScanner scan(in, name);
  std::string line;
  if (!scan.next(line)) scan.fail("empty input (no content lines)");

  EdgeListFormat format = options.format;
  if (format == EdgeListFormat::kAuto) {
    std::string_view tok[3];
    const std::size_t count = tokenize(line, tok, 3);
    if (tok[0] == "nav-graph") {
      format = EdgeListFormat::kNavGraph;
    } else if (tok[0] == "c" || tok[0] == "p") {
      format = EdgeListFormat::kDimacs;
    } else if (count == 2) {
      format = EdgeListFormat::kSnap;
    } else {
      scan.fail("cannot detect edge-list format (expected 'nav-graph 1', a "
                "DIMACS 'c'/'p' line, or a '<u> <v>' pair)");
    }
  }

  ParsedEdges parsed;
  switch (format) {
    case EdgeListFormat::kNavGraph:
      parsed = parse_nav_graph(scan, line, /*tolerate_self_loops=*/true);
      break;
    case EdgeListFormat::kDimacs:
      parsed = parse_dimacs(scan, std::move(line));
      break;
    default:
      parsed = parse_snap(scan, line);
      break;
  }
  return finish(std::move(parsed), format, options);
}

LoadedGraph load_edge_list(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return load_edge_list(file, path, options);
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  write_graph(file, g);
  if (!file) throw std::runtime_error("write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(file);
}

}  // namespace nav::graph
