#include "graph/connectivity.hpp"

#include <algorithm>

#include "graph/bfs_engine.hpp"

namespace nav::graph {

Components connected_components(const Graph& g) {
  Components result;
  result.component_of.assign(g.num_nodes(), kNoNode);
  // component_of doubles as the visited set; only the queue is scratch.
  auto& ws = local_bfs_workspace();
  ws.prepare(g.num_nodes());
  auto& queue = ws.queue();
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (result.component_of[start] != kNoNode) continue;
    const auto comp = static_cast<NodeId>(result.count++);
    result.component_of[start] = comp;
    queue.clear();
    queue.push_back(start);
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (result.component_of[v] == kNoNode) {
          result.component_of[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).count == 1;
}

LargestComponent largest_component(const Graph& g) {
  const auto comps = connected_components(g);
  std::vector<std::size_t> size(comps.count, 0);
  for (const NodeId c : comps.component_of) ++size[c];
  const auto best = static_cast<NodeId>(std::distance(
      size.begin(), std::max_element(size.begin(), size.end())));

  LargestComponent out;
  out.old_to_new.assign(g.num_nodes(), kNoNode);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (comps.component_of[u] == best) {
      out.old_to_new[u] = static_cast<NodeId>(out.new_to_old.size());
      out.new_to_old.push_back(u);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : g.edge_list()) {
    if (out.old_to_new[u] != kNoNode && out.old_to_new[v] != kNoNode) {
      edges.emplace_back(out.old_to_new[u], out.old_to_new[v]);
    }
  }
  out.graph = Graph(static_cast<NodeId>(out.new_to_old.size()), std::move(edges));
  return out;
}

}  // namespace nav::graph
