#include "graph/bfs_engine.hpp"

#include <algorithm>
#include <bit>

#include "runtime/scratch_pool.hpp"

namespace nav::graph {

namespace {

// Beamer switching thresholds: go bottom-up when the frontier's out-edges
// exceed unexplored/kAlpha, back to top-down when the frontier shrinks under
// n/kBeta. Pure heuristics — distances are level-synchronous and identical
// under any schedule.
constexpr std::uint64_t kAlpha = 15;
constexpr std::uint64_t kBeta = 18;

// Below these sizes the bitmap bookkeeping outweighs any bottom-up win.
constexpr std::size_t kDiroptMinNodes = 1024;
constexpr std::uint64_t kDiroptMinDirectedEdges = 4096;

inline void set_bit(std::vector<std::uint64_t>& bits, NodeId v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

inline bool test_bit(const std::vector<std::uint64_t>& bits, NodeId v) {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}

}  // namespace

void BfsWorkspace::prepare(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    if (!mark_stamp_.empty()) mark_stamp_.assign(n, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // 16-bit generation counter wrapped: stale stamps from 65535 epochs ago
    // could collide, so pay one full clear and restart at 1 (0 is reserved
    // as "never stamped"). Amortised cost: O(n / 65535) per prepare.
    std::fill(stamp_.begin(), stamp_.end(), std::uint16_t{0});
    std::fill(mark_stamp_.begin(), mark_stamp_.end(), std::uint16_t{0});
    epoch_ = 1;
  }
  queue_.clear();
}

void BfsWorkspace::mark(NodeId v) {
  if (mark_stamp_.size() < stamp_.size()) mark_stamp_.resize(stamp_.size(), 0);
  mark_stamp_[v] = epoch_;
}

void BfsWorkspace::distances_into(const Graph& g, NodeId source,
                                  std::span<Dist> out, Dist radius) {
  if (radius == kInfDist && g.num_nodes() >= kDiroptMinNodes &&
      2 * g.num_edges() >= kDiroptMinDirectedEdges) {
    diropt_into(g, source, out);
    return;
  }
  distances_into_scalar(g, source, out, radius);
}

void BfsWorkspace::distances_into_scalar(const Graph& g, NodeId source,
                                         std::span<Dist> out, Dist radius) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  NAV_REQUIRE(out.size() == g.num_nodes(), "distance output size mismatch");
  // The output doubles as the visited set (unvisited == kInfDist), so the
  // dense kernels need no stamps — only the reusable queue.
  std::fill(out.begin(), out.end(), kInfDist);
  queue_.clear();
  out[source] = 0;
  queue_.push_back(source);
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    const Dist du = out[u];
    if (du >= radius) continue;  // children would exceed the radius
    for (const NodeId v : g.neighbors(u)) {
      if (out[v] == kInfDist) {
        out[v] = du + 1;
        queue_.push_back(v);
      }
    }
  }
}

void BfsWorkspace::ensure_bitmaps(std::size_t words) {
  if (front_bits_.size() < words) {
    front_bits_.resize(words);
    next_bits_.resize(words);
    visited_bits_.resize(words);
  }
}

void BfsWorkspace::diropt_into(const Graph& g, NodeId source,
                               std::span<Dist> out) {
  const std::size_t n = g.num_nodes();
  NAV_REQUIRE(source < n, "BFS source out of range");
  NAV_REQUIRE(out.size() == n, "distance output size mismatch");
  std::fill(out.begin(), out.end(), kInfDist);

  const std::size_t words = (n + 63) / 64;
  ensure_bitmaps(words);
  std::fill(visited_bits_.begin(), visited_bits_.begin() + words, 0u);
  // Bits >= n never enter the frontier; mask them out of "unvisited".
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};

  queue_.clear();
  out[source] = 0;
  set_bit(visited_bits_, source);
  queue_.push_back(source);

  std::uint64_t unexplored = 2 * g.num_edges();
  std::uint64_t frontier_edges = g.degree(source);
  std::size_t frontier_count = 1;
  std::size_t level_begin = 0;  // current level = queue_[level_begin..end)
  Dist depth = 0;
  bool bottom_up = false;
  bool growing = true;  // frontier larger than its predecessor?

  while (frontier_count > 0) {
    // Beamer's switch gate needs both conditions: a frontier rich in
    // out-edges AND still growing. Past the sweep's midpoint frontiers
    // shrink while unexplored edges run out, and flipping there would make
    // every tail level scan all remaining unvisited nodes fruitlessly.
    if (!bottom_up && growing && frontier_edges > unexplored / kAlpha) {
      // Flip to bottom-up: materialise the current level as a bitmap.
      std::fill(front_bits_.begin(), front_bits_.begin() + words, 0u);
      for (std::size_t i = level_begin; i < queue_.size(); ++i) {
        set_bit(front_bits_, queue_[i]);
      }
      bottom_up = true;
    }

    if (bottom_up) {
      // Bottom-up level: every unvisited node scans its own neighbours for a
      // frontier member and stops at the first hit.
      std::fill(next_bits_.begin(), next_bits_.begin() + words, 0u);
      std::size_t next_count = 0;
      std::uint64_t next_edges = 0;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t unvisited = ~visited_bits_[w];
        if (w == words - 1) unvisited &= tail_mask;
        while (unvisited != 0) {
          const auto bit = static_cast<unsigned>(std::countr_zero(unvisited));
          unvisited &= unvisited - 1;
          const auto v = static_cast<NodeId>(w * 64 + bit);
          for (const NodeId u : g.neighbors(v)) {
            if (test_bit(front_bits_, u)) {
              out[v] = depth + 1;
              set_bit(next_bits_, v);
              ++next_count;
              next_edges += g.degree(v);
              break;
            }
          }
        }
      }
      // Newly found nodes enter visited after the scan (a level must not see
      // its own members as frontier candidates' "visited").
      for (std::size_t w = 0; w < words; ++w) visited_bits_[w] |= next_bits_[w];
      std::swap(front_bits_, next_bits_);
      unexplored -= std::min<std::uint64_t>(unexplored, frontier_edges);
      growing = next_count > frontier_count;
      frontier_count = next_count;
      frontier_edges = next_edges;
      ++depth;
      if (frontier_count > 0 && !growing && frontier_count < n / kBeta) {
        // Flip back: rebuild the queue from the frontier bitmap.
        queue_.clear();
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = front_bits_[w];
          while (bits != 0) {
            const auto bit = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            queue_.push_back(static_cast<NodeId>(w * 64 + bit));
          }
        }
        level_begin = 0;
        bottom_up = false;
      }
    } else {
      // Top-down level: expand the queue slice, tracking the next level's
      // out-edge count for the switch heuristic.
      const std::size_t level_end = queue_.size();
      std::uint64_t next_edges = 0;
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const NodeId u = queue_[i];
        const Dist du = out[u];
        for (const NodeId v : g.neighbors(u)) {
          if (out[v] == kInfDist) {
            out[v] = du + 1;
            set_bit(visited_bits_, v);
            queue_.push_back(v);
            next_edges += g.degree(v);
          }
        }
      }
      unexplored -= std::min<std::uint64_t>(unexplored, frontier_edges);
      level_begin = level_end;
      const std::size_t next_count = queue_.size() - level_end;
      growing = next_count > frontier_count;
      frontier_count = next_count;
      frontier_edges = next_edges;
      ++depth;
    }
  }
}

void BfsWorkspace::multi_source_into(const Graph& g,
                                     std::span<const NodeId> sources,
                                     std::span<Dist> out) {
  NAV_REQUIRE(!sources.empty(), "multi_source_bfs needs at least one source");
  NAV_REQUIRE(out.size() == g.num_nodes(), "distance output size mismatch");
  std::fill(out.begin(), out.end(), kInfDist);
  queue_.clear();
  for (const NodeId s : sources) {
    NAV_REQUIRE(s < g.num_nodes(), "BFS source out of range");
    if (out[s] == kInfDist) {
      out[s] = 0;
      queue_.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (out[v] == kInfDist) {
        out[v] = out[u] + 1;
        queue_.push_back(v);
      }
    }
  }
}

BfsWorkspace::BallView BfsWorkspace::ball(const Graph& g, NodeId center,
                                          Dist radius) {
  NAV_REQUIRE(center < g.num_nodes(), "ball center out of range");
  const std::size_t n = g.num_nodes();
  prepare(n);
  try_visit(center);
  queue_.push_back(center);
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist depth = 0;
  BallView view;
  while (head < queue_.size() && depth < radius) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    ++depth;
    level_end = queue_.size();
    if (queue_.size() == n) {
      // The ball swallowed the graph: no later level can add members, and
      // depth is an eccentricity upper bound for the center.
      view.whole_graph = true;
      view.exhausted_depth = depth;
      break;
    }
  }
  view.order = {queue_.data(), queue_.size()};
  return view;
}

Dist BfsWorkspace::eccentricity(const Graph& g, NodeId source) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  prepare(g.num_nodes());
  try_visit(source);
  queue_.push_back(source);
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist ecc = 0;
  while (head < queue_.size()) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    if (queue_.size() > level_end) ++ecc;  // a new, non-empty level exists
    level_end = queue_.size();
  }
  return ecc;
}

FarthestResult BfsWorkspace::farthest(const Graph& g, NodeId source) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  prepare(g.num_nodes());
  try_visit(source);
  queue_.push_back(source);
  std::size_t head = 0;
  std::size_t level_end = 1;
  std::size_t level_begin = 0;
  Dist ecc = 0;
  while (head < queue_.size()) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    if (queue_.size() > level_end) {
      ++ecc;
      level_begin = level_end;  // the new last level starts here
    }
    level_end = queue_.size();
  }
  // queue_[level_begin..end) holds exactly the nodes at distance ecc;
  // smallest id among them matches the reference's ascending-id scan.
  NodeId best = queue_[level_begin];
  for (std::size_t i = level_begin + 1; i < queue_.size(); ++i) {
    best = std::min(best, queue_[i]);
  }
  return {best, ecc};
}

BfsWorkspace& local_bfs_workspace() {
  return nav::thread_scratch<BfsWorkspace>();
}

std::vector<Dist> bfs_distances_reference(const Graph& g, NodeId source,
                                          Dist radius) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> queue;
  queue.reserve(64);
  dist[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const Dist du = dist[u];
    if (du >= radius) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ball_reference(const Graph& g, NodeId center, Dist radius) {
  NAV_REQUIRE(center < g.num_nodes(), "ball center out of range");
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> order;
  std::vector<NodeId> frontier{center};
  visited[center] = 1;
  order.push_back(center);
  Dist depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < radius) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          next.push_back(v);
          order.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return order;
}

}  // namespace nav::graph
