#include "graph/bfs_engine.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "runtime/scratch_pool.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

namespace {

// Process-wide sweep instrumentation. Handles are registered once; every
// increment afterwards is a wait-free store into the calling thread's shard.
// ParallelBfs metrics are touched only by the coordinating thread — lane
// threads stay registry-free so warm parallel sweeps remain zero-allocation.
struct BfsMetrics {
  obs::Counter sweep_diropt;
  obs::Counter sweep_scalar_full;
  obs::Counter sweep_scalar_bounded;
  obs::Counter parallel_sweeps;
  obs::Counter parallel_levels;
  obs::Counter inline_levels;
  obs::HistogramHandle frontier_size;
  obs::HistogramHandle lanes_active;

  BfsMetrics()
      : sweep_diropt(obs::default_registry().counter("bfs.sweep_diropt")),
        sweep_scalar_full(
            obs::default_registry().counter("bfs.sweep_scalar_full")),
        sweep_scalar_bounded(
            obs::default_registry().counter("bfs.sweep_scalar_bounded")),
        parallel_sweeps(
            obs::default_registry().counter("parallel_bfs.sweeps")),
        parallel_levels(
            obs::default_registry().counter("parallel_bfs.levels_parallel")),
        inline_levels(
            obs::default_registry().counter("parallel_bfs.levels_inline")),
        frontier_size(obs::default_registry().histogram(
            "parallel_bfs.frontier_size", 0.0, 1 << 16, 64)),
        lanes_active(obs::default_registry().histogram(
            "parallel_bfs.lanes_active", 0.0, 64.0, 64)) {}
};

BfsMetrics& bfs_metrics() {
  static BfsMetrics* m = new BfsMetrics();
  return *m;
}

// Beamer switching thresholds: go bottom-up when the frontier's out-edges
// exceed unexplored/kAlpha, back to top-down when the frontier shrinks under
// n/kBeta. Pure heuristics — distances are level-synchronous and identical
// under any schedule.
constexpr std::uint64_t kAlpha = 15;
constexpr std::uint64_t kBeta = 18;

// Below these sizes the bitmap bookkeeping outweighs any bottom-up win.
constexpr std::size_t kDiroptMinNodes = 1024;
constexpr std::uint64_t kDiroptMinDirectedEdges = 4096;

inline void set_bit(std::vector<std::uint64_t>& bits, NodeId v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

inline bool test_bit(const std::vector<std::uint64_t>& bits, NodeId v) {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}

}  // namespace

void BfsWorkspace::prepare(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    if (!mark_stamp_.empty()) mark_stamp_.assign(n, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // 16-bit generation counter wrapped: stale stamps from 65535 epochs ago
    // could collide, so pay one full clear and restart at 1 (0 is reserved
    // as "never stamped"). Amortised cost: O(n / 65535) per prepare.
    std::fill(stamp_.begin(), stamp_.end(), std::uint16_t{0});
    std::fill(mark_stamp_.begin(), mark_stamp_.end(), std::uint16_t{0});
    epoch_ = 1;
  }
  queue_.clear();
}

void BfsWorkspace::mark(NodeId v) {
  if (mark_stamp_.size() < stamp_.size()) mark_stamp_.resize(stamp_.size(), 0);
  mark_stamp_[v] = epoch_;
}

void BfsWorkspace::distances_into(const Graph& g, NodeId source,
                                  std::span<Dist> out, Dist radius) {
  const std::size_t n = g.num_nodes();
  // A finite radius >= n-1 can never bind (every finite distance is at most
  // n-1), so promote it to the unbounded sweep: callers passing a "huge"
  // radius get the direction-optimizing kernel instead of silently paying a
  // bounded scan of the entire graph. last_sweep_kind() exposes the decision.
  if (radius != kInfDist && n > 0 &&
      std::uint64_t{radius} >= std::uint64_t{n - 1}) {
    radius = kInfDist;
  }
  if (radius == kInfDist && n >= kDiroptMinNodes &&
      2 * g.num_edges() >= kDiroptMinDirectedEdges) {
    last_sweep_kind_ = SweepKind::kDirectionOptimizing;
    ++sweep_tally_[static_cast<std::size_t>(SweepKind::kDirectionOptimizing)];
    bfs_metrics().sweep_diropt.inc();
    diropt_into(g, source, out);
    return;
  }
  last_sweep_kind_ = radius == kInfDist ? SweepKind::kScalarFull
                                        : SweepKind::kScalarBounded;
  ++sweep_tally_[static_cast<std::size_t>(last_sweep_kind_)];
  if (last_sweep_kind_ == SweepKind::kScalarFull) {
    bfs_metrics().sweep_scalar_full.inc();
  } else {
    bfs_metrics().sweep_scalar_bounded.inc();
  }
  distances_into_scalar(g, source, out, radius);
}

void BfsWorkspace::distances_into_scalar(const Graph& g, NodeId source,
                                         std::span<Dist> out, Dist radius) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  NAV_REQUIRE(out.size() == g.num_nodes(), "distance output size mismatch");
  // The output doubles as the visited set (unvisited == kInfDist), so the
  // dense kernels need no stamps — only the reusable queue.
  std::fill(out.begin(), out.end(), kInfDist);
  queue_.clear();
  out[source] = 0;
  queue_.push_back(source);
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    const Dist du = out[u];
    if (du >= radius) continue;  // children would exceed the radius
    for (const NodeId v : g.neighbors(u)) {
      if (out[v] == kInfDist) {
        out[v] = du + 1;
        queue_.push_back(v);
      }
    }
  }
}

void BfsWorkspace::ensure_bitmaps(std::size_t words) {
  if (front_bits_.size() < words) {
    front_bits_.resize(words);
    next_bits_.resize(words);
    visited_bits_.resize(words);
  }
}

void BfsWorkspace::diropt_into(const Graph& g, NodeId source,
                               std::span<Dist> out) {
  const std::size_t n = g.num_nodes();
  NAV_REQUIRE(source < n, "BFS source out of range");
  NAV_REQUIRE(out.size() == n, "distance output size mismatch");
  std::fill(out.begin(), out.end(), kInfDist);

  const std::size_t words = (n + 63) / 64;
  ensure_bitmaps(words);
  std::fill(visited_bits_.begin(), visited_bits_.begin() + words, 0u);
  // Bits >= n never enter the frontier; mask them out of "unvisited".
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};

  queue_.clear();
  out[source] = 0;
  set_bit(visited_bits_, source);
  queue_.push_back(source);

  std::uint64_t unexplored = 2 * g.num_edges();
  std::uint64_t frontier_edges = g.degree(source);
  std::size_t frontier_count = 1;
  std::size_t level_begin = 0;  // current level = queue_[level_begin..end)
  Dist depth = 0;
  bool bottom_up = false;
  bool growing = true;  // frontier larger than its predecessor?

  while (frontier_count > 0) {
    // Beamer's switch gate needs both conditions: a frontier rich in
    // out-edges AND still growing. Past the sweep's midpoint frontiers
    // shrink while unexplored edges run out, and flipping there would make
    // every tail level scan all remaining unvisited nodes fruitlessly.
    if (!bottom_up && growing && frontier_edges > unexplored / kAlpha) {
      // Flip to bottom-up: materialise the current level as a bitmap.
      std::fill(front_bits_.begin(), front_bits_.begin() + words, 0u);
      for (std::size_t i = level_begin; i < queue_.size(); ++i) {
        set_bit(front_bits_, queue_[i]);
      }
      bottom_up = true;
    }

    if (bottom_up) {
      // Bottom-up level: every unvisited node scans its own neighbours for a
      // frontier member and stops at the first hit.
      std::fill(next_bits_.begin(), next_bits_.begin() + words, 0u);
      std::size_t next_count = 0;
      std::uint64_t next_edges = 0;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t unvisited = ~visited_bits_[w];
        if (w == words - 1) unvisited &= tail_mask;
        while (unvisited != 0) {
          const auto bit = static_cast<unsigned>(std::countr_zero(unvisited));
          unvisited &= unvisited - 1;
          const auto v = static_cast<NodeId>(w * 64 + bit);
          for (const NodeId u : g.neighbors(v)) {
            if (test_bit(front_bits_, u)) {
              out[v] = depth + 1;
              set_bit(next_bits_, v);
              ++next_count;
              next_edges += g.degree(v);
              break;
            }
          }
        }
      }
      // Newly found nodes enter visited after the scan (a level must not see
      // its own members as frontier candidates' "visited").
      for (std::size_t w = 0; w < words; ++w) visited_bits_[w] |= next_bits_[w];
      std::swap(front_bits_, next_bits_);
      unexplored -= std::min<std::uint64_t>(unexplored, frontier_edges);
      growing = next_count > frontier_count;
      frontier_count = next_count;
      frontier_edges = next_edges;
      ++depth;
      if (frontier_count > 0 && !growing && frontier_count < n / kBeta) {
        // Flip back: rebuild the queue from the frontier bitmap.
        queue_.clear();
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = front_bits_[w];
          while (bits != 0) {
            const auto bit = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            queue_.push_back(static_cast<NodeId>(w * 64 + bit));
          }
        }
        level_begin = 0;
        bottom_up = false;
      }
    } else {
      // Top-down level: expand the queue slice, tracking the next level's
      // out-edge count for the switch heuristic.
      const std::size_t level_end = queue_.size();
      std::uint64_t next_edges = 0;
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const NodeId u = queue_[i];
        const Dist du = out[u];
        for (const NodeId v : g.neighbors(u)) {
          if (out[v] == kInfDist) {
            out[v] = du + 1;
            set_bit(visited_bits_, v);
            queue_.push_back(v);
            next_edges += g.degree(v);
          }
        }
      }
      unexplored -= std::min<std::uint64_t>(unexplored, frontier_edges);
      level_begin = level_end;
      const std::size_t next_count = queue_.size() - level_end;
      growing = next_count > frontier_count;
      frontier_count = next_count;
      frontier_edges = next_edges;
      ++depth;
    }
  }
}

void BfsWorkspace::multi_source_into(const Graph& g,
                                     std::span<const NodeId> sources,
                                     std::span<Dist> out) {
  NAV_REQUIRE(!sources.empty(), "multi_source_bfs needs at least one source");
  NAV_REQUIRE(out.size() == g.num_nodes(), "distance output size mismatch");
  std::fill(out.begin(), out.end(), kInfDist);
  queue_.clear();
  for (const NodeId s : sources) {
    NAV_REQUIRE(s < g.num_nodes(), "BFS source out of range");
    if (out[s] == kInfDist) {
      out[s] = 0;
      queue_.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (out[v] == kInfDist) {
        out[v] = out[u] + 1;
        queue_.push_back(v);
      }
    }
  }
}

BfsWorkspace::BallView BfsWorkspace::ball(const Graph& g, NodeId center,
                                          Dist radius) {
  NAV_REQUIRE(center < g.num_nodes(), "ball center out of range");
  const std::size_t n = g.num_nodes();
  prepare(n);
  try_visit(center);
  queue_.push_back(center);
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist depth = 0;
  BallView view;
  while (head < queue_.size() && depth < radius) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    ++depth;
    level_end = queue_.size();
    if (queue_.size() == n) {
      // The ball swallowed the graph: no later level can add members, and
      // depth is an eccentricity upper bound for the center.
      view.whole_graph = true;
      view.exhausted_depth = depth;
      break;
    }
  }
  view.order = {queue_.data(), queue_.size()};
  return view;
}

Dist BfsWorkspace::eccentricity(const Graph& g, NodeId source) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  prepare(g.num_nodes());
  try_visit(source);
  queue_.push_back(source);
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist ecc = 0;
  while (head < queue_.size()) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    if (queue_.size() > level_end) ++ecc;  // a new, non-empty level exists
    level_end = queue_.size();
  }
  return ecc;
}

FarthestResult BfsWorkspace::farthest(const Graph& g, NodeId source) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  prepare(g.num_nodes());
  try_visit(source);
  queue_.push_back(source);
  std::size_t head = 0;
  std::size_t level_end = 1;
  std::size_t level_begin = 0;
  Dist ecc = 0;
  while (head < queue_.size()) {
    while (head < level_end) {
      const NodeId u = queue_[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (try_visit(v)) queue_.push_back(v);
      }
    }
    if (queue_.size() > level_end) {
      ++ecc;
      level_begin = level_end;  // the new last level starts here
    }
    level_end = queue_.size();
  }
  // queue_[level_begin..end) holds exactly the nodes at distance ecc;
  // smallest id among them matches the reference's ascending-id scan.
  NodeId best = queue_[level_begin];
  for (std::size_t i = level_begin + 1; i < queue_.size(); ++i) {
    best = std::min(best, queue_[i]);
  }
  return {best, ecc};
}

BfsWorkspace& local_bfs_workspace() {
  return nav::thread_scratch<BfsWorkspace>();
}

// ---- multi-worker sweeps -------------------------------------------------

std::size_t ParallelPolicy::resolved_workers() const noexcept {
  return num_workers == 0 ? ThreadPool::default_threads() : num_workers;
}

ParallelBfs::ParallelBfs(ParallelPolicy policy)
    : policy_(policy), team_(policy.resolved_workers()) {}

void ParallelBfs::ensure_capacity(std::size_t n, std::size_t words) {
  if (frontier_.size() < n) frontier_.resize(n);
  if (front_bits_.size() < words) {
    front_bits_.resize(words);
    next_bits_.resize(words);
    visited_bits_.resize(words);
  }
  const std::size_t lanes = team_.lanes();
  if (lane_stats_.size() < lanes) lane_stats_.resize(lanes);
  if (lane_offsets_.size() < lanes + 1) lane_offsets_.resize(lanes + 1);
}

void ParallelBfs::rebuild_frontier(std::size_t words, std::size_t next_count) {
  frontier_count_ = next_count;
  if (next_count == 0) return;
  const std::size_t lanes = team_.lanes();
  if (next_count < policy_.serial_frontier_cutoff) {
    // Small frontier: one ascending scan on the coordinating lane.
    std::size_t pos = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = front_bits_[w];
      while (bits != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        frontier_[pos++] = static_cast<NodeId>(w * 64 + bit);
      }
    }
    return;
  }
  // Deterministic two-pass merge: each lane popcounts its word range, lane 0
  // prefix-sums the counts into write offsets, then every lane fills its
  // slice. The result is the ascending-id node list regardless of lane count
  // or interleaving — the canonical frontier order the determinism tests pin.
  team_.run([&](std::size_t lane) {
    const std::size_t w0 = words * lane / lanes;
    const std::size_t w1 = words * (lane + 1) / lanes;
    std::size_t count = 0;
    for (std::size_t w = w0; w < w1; ++w) {
      count += static_cast<std::size_t>(std::popcount(front_bits_[w]));
    }
    lane_offsets_[lane + 1] = count;
  });
  lane_offsets_[0] = 0;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lane_offsets_[lane + 1] += lane_offsets_[lane];
  }
  NAV_ASSERT(lane_offsets_[lanes] == next_count);
  team_.run([&](std::size_t lane) {
    const std::size_t w0 = words * lane / lanes;
    const std::size_t w1 = words * (lane + 1) / lanes;
    std::size_t pos = lane_offsets_[lane];
    for (std::size_t w = w0; w < w1; ++w) {
      std::uint64_t bits = front_bits_[w];
      while (bits != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        frontier_[pos++] = static_cast<NodeId>(w * 64 + bit);
      }
    }
  });
}

void ParallelBfs::distances_into(const Graph& g, NodeId source,
                                 std::span<Dist> out, Dist radius) {
  const std::size_t n = g.num_nodes();
  NAV_REQUIRE(source < n, "BFS source out of range");
  NAV_REQUIRE(out.size() == n, "distance output size mismatch");
  // Same radius promotion as the workspace dispatcher: a bound that cannot
  // bind is treated as unbounded so both engines agree on the cutover.
  if (radius != kInfDist && n > 0 &&
      std::uint64_t{radius} >= std::uint64_t{n - 1}) {
    radius = kInfDist;
  }
  const std::size_t lanes = team_.lanes();
  if (lanes <= 1 || n < 2) {
    serial_ws_.distances_into(g, source, out, radius);
    return;
  }

  const std::size_t words = (n + 63) / 64;
  ensure_capacity(n, words);
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};

  // Parallel out-fill, each lane a contiguous range: on NUMA hosts this is
  // the first touch of a caller-fresh slab, so pages land near the lanes
  // that sweep them.
  Dist* const dist = out.data();
  team_.run([&](std::size_t lane) {
    const std::size_t lo = n * lane / lanes;
    const std::size_t hi = n * (lane + 1) / lanes;
    std::fill(dist + lo, dist + hi, kInfDist);
  });
  std::fill(visited_bits_.begin(), visited_bits_.begin() + words, 0u);
  std::fill(front_bits_.begin(), front_bits_.begin() + words, 0u);

  dist[source] = 0;
  set_bit(front_bits_, source);
  set_bit(visited_bits_, source);
  frontier_[0] = source;
  frontier_count_ = 1;

  const bool allow_bottom_up = radius == kInfDist &&
                               n >= policy_.min_diropt_nodes &&
                               2 * g.num_edges() >= kDiroptMinDirectedEdges;

  std::uint64_t unexplored = 2 * g.num_edges();
  std::uint64_t frontier_edges = g.degree(source);
  bool growing = true;
  bool bottom_up = false;
  Dist depth = 0;

  // Coordinator-only instrumentation: lane closures never touch the registry,
  // so warm parallel sweeps stay zero-allocation and lane code stays lean.
  // Per-level counts accumulate locally and post once at sweep end.
  bfs_metrics().parallel_sweeps.inc();
  std::uint64_t levels_parallel = 0;
  std::uint64_t levels_inline = 0;

  while (frontier_count_ > 0) {
    if (depth >= radius) break;  // children would exceed the radius
    if (allow_bottom_up) {
      // The scalar engine's Beamer hysteresis, verbatim: flip down only
      // while the frontier is rich AND growing, flip back once it shrinks
      // under n/beta. Pure heuristics — output is schedule-independent.
      if (!bottom_up && growing && frontier_edges > unexplored / kAlpha) {
        bottom_up = true;
      } else if (bottom_up && !growing && frontier_count_ < n / kBeta) {
        bottom_up = false;
      }
    }

    std::fill(next_bits_.begin(), next_bits_.begin() + words, 0u);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      lane_stats_[lane].next_count = 0;
      lane_stats_[lane].next_edges = 0;
    }
    const Dist next_depth = depth + 1;

    if (bottom_up) {
      // Bottom-up, range-split: each lane owns a contiguous word range of
      // the bitmaps, testing 64 unvisited candidates per uint64_t word; a
      // candidate joins the level when any neighbour sits in the frontier
      // bitmap. All writes (dist, next word) hit lane-owned slots, so the
      // level is race-free with plain stores.
      team_.run([&](std::size_t lane) {
        const std::size_t w0 = words * lane / lanes;
        const std::size_t w1 = words * (lane + 1) / lanes;
        std::uint64_t count = 0;
        std::uint64_t edges = 0;
        for (std::size_t w = w0; w < w1; ++w) {
          std::uint64_t unvisited = ~visited_bits_[w];
          if (w == words - 1) unvisited &= tail_mask;
          std::uint64_t found = 0;
          while (unvisited != 0) {
            const auto bit = static_cast<unsigned>(std::countr_zero(unvisited));
            unvisited &= unvisited - 1;
            const auto v = static_cast<NodeId>(w * 64 + bit);
            for (const NodeId u : g.neighbors(v)) {
              if (test_bit(front_bits_, u)) {
                dist[v] = next_depth;
                found |= std::uint64_t{1} << bit;
                ++count;
                edges += g.degree(v);
                break;
              }
            }
          }
          if (found != 0) next_bits_[w] = found;
        }
        lane_stats_[lane].next_count = count;
        lane_stats_[lane].next_edges = edges;
      });
    } else if (frontier_count_ < policy_.serial_frontier_cutoff) {
      // Tiny level: fork/join overhead would dominate, expand inline.
      std::uint64_t count = 0;
      std::uint64_t edges = 0;
      for (std::size_t i = 0; i < frontier_count_; ++i) {
        const NodeId u = frontier_[i];
        for (const NodeId v : g.neighbors(u)) {
          if (dist[v] == kInfDist) {
            dist[v] = next_depth;
            set_bit(next_bits_, v);
            ++count;
            edges += g.degree(v);
          }
        }
      }
      lane_stats_[0].next_count = count;
      lane_stats_[0].next_edges = edges;
    } else {
      // Top-down, frontier-chunked: lanes claim fixed-size chunks off a
      // shared counter (the parallel_for_dynamic idiom) and claim nodes
      // with a CAS on the output distance — the winner also publishes the
      // node into the next-frontier bitmap with an atomic fetch_or. Every
      // winner writes the same value (next_depth), so the output cannot
      // depend on which lane wins a race.
      chunk_next_.store(0, std::memory_order_relaxed);
      team_.run([&](std::size_t lane) {
        constexpr std::size_t kChunk = 64;
        std::uint64_t count = 0;
        std::uint64_t edges = 0;
        while (true) {
          const std::size_t begin =
              chunk_next_.fetch_add(kChunk, std::memory_order_relaxed);
          if (begin >= frontier_count_) break;
          const std::size_t end = std::min(frontier_count_, begin + kChunk);
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId u = frontier_[i];
            for (const NodeId v : g.neighbors(u)) {
              std::atomic_ref<Dist> slot(dist[v]);
              if (slot.load(std::memory_order_relaxed) != kInfDist) continue;
              Dist expected = kInfDist;
              if (slot.compare_exchange_strong(expected, next_depth,
                                               std::memory_order_relaxed)) {
                std::atomic_ref<std::uint64_t>(next_bits_[v >> 6])
                    .fetch_or(std::uint64_t{1} << (v & 63),
                              std::memory_order_relaxed);
                ++count;
                edges += g.degree(v);
              }
            }
          }
        }
        lane_stats_[lane].next_count = count;
        lane_stats_[lane].next_edges = edges;
      });
    }

    const bool expanded_inline =
        !bottom_up && frontier_count_ < policy_.serial_frontier_cutoff;
    std::size_t next_count = 0;
    std::uint64_t next_edges = 0;
    std::size_t active_lanes = 0;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      next_count += static_cast<std::size_t>(lane_stats_[lane].next_count);
      next_edges += lane_stats_[lane].next_edges;
      if (lane_stats_[lane].next_count > 0) ++active_lanes;
    }
    if (expanded_inline) {
      ++levels_inline;
    } else {
      ++levels_parallel;
      bfs_metrics().lanes_active.observe(static_cast<double>(active_lanes));
    }
    bfs_metrics().frontier_size.observe(
        static_cast<double>(frontier_count_));
    // The level barrier has passed: fold the level into visited, make its
    // bitmap the new frontier, and rebuild the node list in ascending order.
    for (std::size_t w = 0; w < words; ++w) visited_bits_[w] |= next_bits_[w];
    std::swap(front_bits_, next_bits_);
    const std::size_t prev_count = frontier_count_;
    rebuild_frontier(words, next_count);

    unexplored -= std::min<std::uint64_t>(unexplored, frontier_edges);
    growing = next_count > prev_count;
    frontier_edges = next_edges;
    ++depth;
  }

  if (levels_parallel > 0) bfs_metrics().parallel_levels.inc(levels_parallel);
  if (levels_inline > 0) bfs_metrics().inline_levels.inc(levels_inline);
}

ParallelBfs& shared_parallel_bfs() {
  return nav::thread_scratch<ParallelBfs>();
}

std::vector<Dist> bfs_distances_reference(const Graph& g, NodeId source,
                                          Dist radius) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> queue;
  queue.reserve(64);
  dist[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const Dist du = dist[u];
    if (du >= radius) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ball_reference(const Graph& g, NodeId center, Dist radius) {
  NAV_REQUIRE(center < g.num_nodes(), "ball center out of range");
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> order;
  std::vector<NodeId> frontier{center};
  visited[center] = 1;
  order.push_back(center);
  Dist depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < radius) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          next.push_back(v);
          order.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return order;
}

}  // namespace nav::graph
