#include "graph/oracle_factory.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/landmark_oracle.hpp"
#include "resilience/faulty_oracle.hpp"
#include "runtime/parse.hpp"

namespace nav::graph {

namespace {

/// WIDTH token: explicit width, or "auto" = narrowest width covering twice
/// an eccentricity (diameter <= 2·ecc(v) for any v). Disconnected graphs
/// have infinite-distance pairs, so "auto" stays at u32 there (the sentinel
/// always fits; the bound does not exist).
DistWidth resolve_width(const std::string& token, const std::string& spec,
                        const Graph& g) {
  if (token != "auto") return parse_dist_width(token, spec);
  if (g.num_nodes() == 0 || !is_connected(g)) return DistWidth::kU32;
  const Dist ecc = local_bfs_workspace().eccentricity(g, 0);
  const Dist bound = ecc >= kInfDist / 2 ? kInfDist - 1 : ecc * 2;
  return width_for_bound(bound);
}

struct CacheCap {
  bool is_budget = false;  // trailing K/M/G: a byte budget, not a slot count
  std::size_t value = 0;
};

CacheCap parse_cache_cap(const std::string& token, const std::string& spec) {
  std::size_t mult = 0;
  if (!token.empty()) {
    switch (token.back()) {
      case 'K': case 'k': mult = std::size_t{1} << 10; break;
      case 'M': case 'm': mult = std::size_t{1} << 20; break;
      case 'G': case 'g': mult = std::size_t{1} << 30; break;
      default: break;
    }
  }
  if (mult == 0) {
    return {false, parse_spec_number<std::size_t>(token, spec)};
  }
  const std::size_t base = parse_spec_number<std::size_t>(
      token.substr(0, token.size() - 1), spec);
  return {true, base * mult};
}

}  // namespace

std::unique_ptr<DistanceOracle> make_oracle(const std::string& spec,
                                            const Graph& g,
                                            const OracleConfig& config) {
  const std::vector<std::string> tokens = split_spec(spec);
  const std::string& head = tokens[0];

  if (head == "auto") {
    if (tokens.size() != 1) {
      throw std::invalid_argument("'auto' takes no arguments: " + spec);
    }
    // The historical hard-wired policy, bit for bit.
    if (g.num_nodes() <= config.dense_limit) {
      return std::make_unique<DistanceMatrix>(g, config.policy);
    }
    return std::make_unique<TargetDistanceCache>(g, config.cache_slots,
                                                 config.policy);
  }

  if (head == "matrix") {
    if (tokens.size() > 2) {
      throw std::invalid_argument("matrix takes one optional width: " + spec);
    }
    const DistWidth width =
        tokens.size() == 2 ? resolve_width(tokens[1], spec, g)
                           : DistWidth::kU32;
    return std::make_unique<DistanceMatrix>(g, config.policy, width);
  }

  if (head == "cache") {
    if (tokens.size() > 3) {
      throw std::invalid_argument(
          "cache takes at most '<capacity>:<width>': " + spec);
    }
    const DistWidth width =
        tokens.size() == 3 ? resolve_width(tokens[2], spec, g)
                           : DistWidth::kU32;
    if (tokens.size() < 2) {
      return std::make_unique<TargetDistanceCache>(g, config.cache_slots,
                                                   config.policy, width);
    }
    const CacheCap cap = parse_cache_cap(tokens[1], spec);
    if (cap.is_budget) {
      return std::make_unique<TargetDistanceCache>(
          g, MemoryBudget{cap.value}, config.policy, width);
    }
    return std::make_unique<TargetDistanceCache>(g, cap.value, config.policy,
                                                 width);
  }

  if (head == "landmark") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      throw std::invalid_argument(
          "landmark spec is 'landmark:<k>[:degree|farthest]': " + spec);
    }
    LandmarkOptions options;
    options.k = parse_spec_number<std::size_t>(tokens[1], spec);
    if (options.k == 0) {
      throw std::invalid_argument("landmark k must be >= 1: " + spec);
    }
    options.policy = config.policy;
    if (tokens.size() == 3) {
      if (tokens[2] == "degree") {
        options.selection = LandmarkSelection::kDegree;
      } else if (tokens[2] == "farthest") {
        options.selection = LandmarkSelection::kFarthest;
      } else {
        throw std::invalid_argument("bad landmark selection '" + tokens[2] +
                                    "' (degree | farthest) in spec: " + spec);
      }
    }
    return std::make_unique<LandmarkOracle>(g, options);
  }

  if (head == "faulty") {
    // "faulty:<base-spec>:<fault-spec>": the base spec may itself contain
    // ':' (e.g. cache:256:u16), so the base ends at the first fault-clause
    // head (stall | fail | slow | seed) — no base grammar uses those words.
    std::size_t split = 1;
    while (split < tokens.size() &&
           !resilience::FaultSpec::is_fault_head(tokens[split])) {
      ++split;
    }
    if (split == 1 || split == tokens.size()) {
      throw std::invalid_argument(
          "faulty spec is 'faulty:<base-spec>:<fault-spec>' (fault-spec: "
          "stall:<p> | fail:<p> | slow:<p>:<us> | seed:<n>, combinable): " +
          spec);
    }
    std::string base_spec = tokens[1];
    for (std::size_t i = 2; i < split; ++i) base_spec += ":" + tokens[i];
    if (tokens[1] == "faulty") {
      throw std::invalid_argument("faulty decorators do not nest: " + spec);
    }
    const auto fault = resilience::FaultSpec::parse(
        {tokens.begin() + static_cast<std::ptrdiff_t>(split), tokens.end()},
        spec);
    return std::make_unique<resilience::FaultyOracle>(
        make_oracle(base_spec, g, config), fault);
  }

  throw std::invalid_argument("unknown oracle spec: " + spec +
                              " (auto | matrix | cache | landmark | faulty)");
}

const std::vector<OracleInfo>& oracle_catalog() {
  static const std::vector<OracleInfo> catalog = {
      {"auto", "matrix for n <= dense_limit, else a cache (the legacy rule)"},
      {"matrix[:u8|u16|u32|auto]",
       "dense all-pairs table at a storage width (auto measures the graph)"},
      {"cache[:<slots>|<bytes>K/M/G][:u8|u16|u32|auto]",
       "per-target BFS cache, LRU-capped by entry count or byte budget"},
      {"landmark:<k>[:degree|farthest]",
       "approximate k-landmark triangle bound (farthest-point default)"},
      {"faulty:<base>:[stall:<p>][:fail:<p>][:slow:<p>:<us>][:seed:<n>]",
       "deterministic fault injection over any base oracle (chaos testing)"},
  };
  return catalog;
}

}  // namespace nav::graph
