// families.hpp — named graph-family registry.
//
// Benches and parameterized tests iterate "family × n" grids; this registry
// maps a family name to a builder that produces a connected instance with
// approximately the requested node count (exact for most families; grids and
// cliques round to the nearest feasible shape).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::graph {

struct FamilySpec {
  std::string name;
  bool randomized = false;  // false: `make` ignores the rng
  std::string description;
  std::function<Graph(NodeId n, Rng& rng)> make;
};

/// All registered families, in stable order:
/// path, cycle, caterpillar, comb, balanced_tree, random_tree, grid2d,
/// torus2d, hypercube, gnp, random_regular, interval, permutation,
/// ring_of_cliques, lollipop, subdivided_clique.
[[nodiscard]] const std::vector<FamilySpec>& all_families();

/// Lookup by name; throws std::invalid_argument for unknown names.
[[nodiscard]] const FamilySpec& family(const std::string& name);

/// True if `name` is registered.
[[nodiscard]] bool has_family(const std::string& name);

/// True when `spec` names a file-backed graph source rather than a family:
/// "file:<path>" (format auto-detected, see graph_io.hpp) or
/// "dimacs:<path>".
[[nodiscard]] bool is_graph_spec(const std::string& spec);

/// Resolves `spec` — a registered family name OR a file-backed graph spec —
/// to a FamilySpec by value. File-backed specs ignore the requested n (the
/// file decides the size; `make` loads it with largest-component
/// extraction), so Experiment::graphs() and sweep_cli take real graphs
/// through the same registry surface as synthetic families. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] FamilySpec graph_source(const std::string& spec);

}  // namespace nav::graph
