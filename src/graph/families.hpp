// families.hpp — named graph-family registry.
//
// Benches and parameterized tests iterate "family × n" grids; this registry
// maps a family name to a builder that produces a connected instance with
// approximately the requested node count (exact for most families; grids and
// cliques round to the nearest feasible shape).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::graph {

struct FamilySpec {
  std::string name;
  bool randomized = false;  // false: `make` ignores the rng
  std::string description;
  std::function<Graph(NodeId n, Rng& rng)> make;
};

/// All registered families, in stable order:
/// path, cycle, caterpillar, comb, balanced_tree, random_tree, grid2d,
/// torus2d, hypercube, gnp, random_regular, interval, permutation,
/// ring_of_cliques, lollipop, subdivided_clique.
[[nodiscard]] const std::vector<FamilySpec>& all_families();

/// Lookup by name; throws std::invalid_argument for unknown names.
[[nodiscard]] const FamilySpec& family(const std::string& name);

/// True if `name` is registered.
[[nodiscard]] bool has_family(const std::string& name);

}  // namespace nav::graph
