#include "graph/permutation_model.hpp"

#include <algorithm>
#include <numeric>

namespace nav::graph {

PermutationModel::PermutationModel(std::vector<NodeId> perm)
    : perm_(std::move(perm)) {
  NAV_REQUIRE(!perm_.empty(), "permutation model needs n >= 1");
  NAV_REQUIRE(perm_.size() <= kNoNode, "permutation too large");
  std::vector<std::uint8_t> seen(perm_.size(), 0);
  for (const NodeId v : perm_) {
    NAV_REQUIRE(v < perm_.size(), "permutation value out of range");
    NAV_REQUIRE(!seen[v], "duplicate permutation value");
    seen[v] = 1;
  }
}

Graph PermutationModel::to_graph() const {
  const NodeId n = num_nodes();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (perm_[u] > perm_[v]) edges.emplace_back(u, v);
  return Graph(n, std::move(edges));
}

std::vector<NodeId> PermutationModel::cut_set(NodeId c) const {
  NAV_REQUIRE(c >= 1 && c < num_nodes(), "cut index in [1, n-1]");
  std::vector<NodeId> crossing;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    const bool left = u < c;
    const bool maps_left = perm_[u] < c;
    if (left != maps_left) crossing.push_back(u);
  }
  return crossing;
}

PermutationModel random_permutation_model(NodeId n, Rng& rng) {
  NAV_REQUIRE(n >= 1, "need n >= 1");
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return PermutationModel(std::move(perm));
}

PermutationModel banded_permutation_model(NodeId n, NodeId window, Rng& rng) {
  NAV_REQUIRE(n >= 2, "need n >= 2");
  NAV_REQUIRE(window >= 2, "window must be >= 2");
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  // Shuffle within disjoint blocks of size `window`.
  for (NodeId base = 0; base < n; base += window) {
    const NodeId hi = std::min<NodeId>(n, base + window);
    for (NodeId i = hi; i > base + 1; --i) {
      const NodeId j = base + static_cast<NodeId>(rng.next_below(i - base));
      std::swap(perm[i - 1], perm[j]);
    }
  }
  // Connectivity repair: ensure every cut c has a crossing segment, i.e. some
  // position u < c holds a value >= c. If cut c is uncrossed, positions
  // {0..c-1} hold exactly values {0..c-1}; swapping any left value with any
  // right value crosses c and can only add crossings at other cuts (the left
  // prefix value multiset only gains larger values for cuts in between).
  // A left-to-right pass therefore terminates with a connected model — the
  // components of a permutation graph are exactly the blocks between
  // uncrossed balanced cuts.
  for (NodeId c = 1; c < n; ++c) {
    bool crossed = false;
    for (NodeId u = 0; u < c && !crossed; ++u) crossed = perm[u] >= c;
    if (!crossed) {
      // Swap value at position c-1 with value at position c: after the swap
      // position c-1 < c holds perm[c] >= c (uncrossed means prefix holds
      // {0..c-1}, so perm[c] >= c).
      std::swap(perm[c - 1], perm[c]);
    }
  }
  return PermutationModel(std::move(perm));
}

}  // namespace nav::graph
