#include "graph/bfs.hpp"

#include <algorithm>

#include "graph/bfs_engine.hpp"

namespace nav::graph {

// The free functions are convenience wrappers over the BFS engine: they run
// on the calling thread's pooled BfsWorkspace (bfs_engine.hpp), so the only
// allocation left is the returned container itself — and ball_size() drops
// even that. Hot paths (distance oracle, schemes, measures) hold a workspace
// and call the kernels directly.

std::vector<Dist> bfs_distances(const Graph& g, NodeId source) {
  std::vector<Dist> dist(g.num_nodes());
  local_bfs_workspace().distances_into(g, source, dist);
  return dist;
}

std::vector<Dist> bfs_distances_bounded(const Graph& g, NodeId source,
                                        Dist radius) {
  std::vector<Dist> dist(g.num_nodes());
  local_bfs_workspace().distances_into(g, source, dist, radius);
  return dist;
}

std::vector<NodeId> ball(const Graph& g, NodeId center, Dist radius) {
  const auto view = local_bfs_workspace().ball(g, center, radius);
  return {view.order.begin(), view.order.end()};
}

std::size_t ball_size(const Graph& g, NodeId center, Dist radius) {
  return local_bfs_workspace().ball(g, center, radius).order.size();
}

std::vector<Dist> multi_source_bfs(const Graph& g,
                                   const std::vector<NodeId>& sources) {
  std::vector<Dist> dist(g.num_nodes());
  local_bfs_workspace().multi_source_into(g, sources, dist);
  return dist;
}

FarthestResult farthest_node(const Graph& g, NodeId source) {
  return local_bfs_workspace().farthest(g, source);
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId source, NodeId target) {
  NAV_REQUIRE(source < g.num_nodes() && target < g.num_nodes(),
              "shortest_path endpoint out of range");
  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> queue{source};
  visited[source] = 1;
  std::size_t head = 0;
  while (head < queue.size() && !visited[target]) {
    const NodeId u = queue[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (!visited[v]) {
        visited[v] = 1;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (!visited[target]) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kNoNode; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  NAV_ASSERT(path.front() == source);
  return path;
}

}  // namespace nav::graph
