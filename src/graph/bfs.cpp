#include "graph/bfs.hpp"

#include <algorithm>

namespace nav::graph {

std::vector<Dist> bfs_distances(const Graph& g, NodeId source) {
  return bfs_distances_bounded(g, source, kInfDist);
}

std::vector<Dist> bfs_distances_bounded(const Graph& g, NodeId source,
                                        Dist radius) {
  NAV_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> queue;
  queue.reserve(64);
  dist[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const Dist du = dist[u];
    if (du >= radius) continue;  // children would exceed the radius
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ball(const Graph& g, NodeId center, Dist radius) {
  NAV_REQUIRE(center < g.num_nodes(), "ball center out of range");
  // Frontier BFS keeping a visited flag keyed by a local map-free trick:
  // we reuse a distance array only over touched nodes, then reset them.
  // For simplicity and cache friendliness at simulation scale, use a
  // byte-visited array (allocation dominated by graph size anyway).
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> order;
  std::vector<NodeId> frontier{center};
  visited[center] = 1;
  order.push_back(center);
  Dist depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty() && depth < radius) {
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          next.push_back(v);
          order.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++depth;
  }
  return order;
}

std::size_t ball_size(const Graph& g, NodeId center, Dist radius) {
  return ball(g, center, radius).size();
}

std::vector<Dist> multi_source_bfs(const Graph& g,
                                   const std::vector<NodeId>& sources) {
  NAV_REQUIRE(!sources.empty(), "multi_source_bfs needs at least one source");
  std::vector<Dist> dist(g.num_nodes(), kInfDist);
  std::vector<NodeId> queue;
  for (const NodeId s : sources) {
    NAV_REQUIRE(s < g.num_nodes(), "BFS source out of range");
    if (dist[s] == kInfDist) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

FarthestResult farthest_node(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  FarthestResult result{source, 0};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != kInfDist && dist[v] > result.distance) {
      result = {v, dist[v]};
    }
  }
  return result;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId source, NodeId target) {
  NAV_REQUIRE(source < g.num_nodes() && target < g.num_nodes(),
              "shortest_path endpoint out of range");
  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  std::vector<std::uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> queue{source};
  visited[source] = 1;
  std::size_t head = 0;
  while (head < queue.size() && !visited[target]) {
    const NodeId u = queue[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (!visited[v]) {
        visited[v] = 1;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (!visited[target]) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kNoNode; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  NAV_ASSERT(path.front() == source);
  return path;
}

}  // namespace nav::graph
