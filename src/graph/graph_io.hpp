// graph_io.hpp — plain-text graph serialisation and real-graph ingestion.
//
// Native format (line oriented, '#' comments allowed):
//   nav-graph 1
//   n <num_nodes>
//   <u> <v>          one edge per line, 0-based ids
//
// Round-trips exactly (the Graph canonicalises edge order on load anyway).
//
// load_edge_list additionally ingests the two formats real graph corpora
// ship in, auto-detected from the first content line:
//   * DIMACS:  'c' comment lines, one 'p <type> <n> <m>' problem line,
//              'e <u> <v>' edges with 1-based ids (also accepts 'a' arcs).
//   * SNAP:    whitespace-separated "<u> <v>" pairs with arbitrary
//              non-negative ids, '#' comments; ids are densely remapped in
//              first-seen order.
// Ingestion is tolerant where corpora are dirty — self-loops and duplicate
// edges are counted and dropped, not rejected — and strict where silence
// would corrupt results: malformed lines and out-of-range DIMACS endpoints
// throw std::invalid_argument naming "<source>:<line>". The paper's model
// needs connected graphs, so by default the largest connected component is
// extracted (LoadedGraph reports how many nodes that dropped).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace nav::graph {

void write_graph(std::ostream& out, const Graph& g);
[[nodiscard]] Graph read_graph(std::istream& in);

/// File convenience wrappers; throw std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content.
void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

/// Edge-list dialects load_edge_list understands. kAuto sniffs the first
/// content line: "nav-graph ..." is native, a 'c'/'p' line is DIMACS, two
/// integers are SNAP.
enum class EdgeListFormat : std::uint8_t { kAuto, kNavGraph, kDimacs, kSnap };

struct EdgeListOptions {
  EdgeListFormat format = EdgeListFormat::kAuto;
  /// Reduce to the largest connected component (the model requires
  /// connectivity; real edge lists rarely guarantee it).
  bool keep_largest_component = true;
};

/// An ingested graph plus the cleanup tally — what was dropped and why, so
/// callers can report provenance instead of silently reshaping the input.
struct LoadedGraph {
  Graph graph;
  EdgeListFormat format = EdgeListFormat::kAuto;  ///< detected dialect
  NodeId nodes_loaded = 0;       ///< node count before component extraction
  NodeId nodes_dropped = 0;      ///< nodes outside the largest component
  std::size_t self_loops = 0;    ///< self-loop lines dropped
  std::size_t duplicate_edges = 0;  ///< parallel edges collapsed
};

/// Streams an edge list in any supported dialect. `name` labels the source
/// in "<name>:<line>: ..." error messages.
[[nodiscard]] LoadedGraph load_edge_list(std::istream& in,
                                         const std::string& name = "<stream>",
                                         const EdgeListOptions& options = {});

/// File wrapper: throws std::runtime_error when the file cannot be opened.
[[nodiscard]] LoadedGraph load_edge_list(const std::string& path,
                                         const EdgeListOptions& options = {});

}  // namespace nav::graph
