// graph_io.hpp — plain-text edge-list serialisation.
//
// Format (line oriented, '#' comments allowed):
//   nav-graph 1
//   n <num_nodes>
//   <u> <v>          one edge per line, 0-based ids
//
// Round-trips exactly (the Graph canonicalises edge order on load anyway).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace nav::graph {

void write_graph(std::ostream& out, const Graph& g);
[[nodiscard]] Graph read_graph(std::istream& in);

/// File convenience wrappers; throw std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content.
void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace nav::graph
