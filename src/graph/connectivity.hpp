// connectivity.hpp — connected components and largest-component extraction.
//
// The paper's model requires connected graphs; random generators (G(n,p),
// random interval, pairing-model regular) may produce disconnected samples,
// which we either retry or reduce to the largest component.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace nav::graph {

/// Component id per node (0-based, ordered by smallest contained node id).
struct Components {
  std::vector<NodeId> component_of;  // size n
  std::size_t count = 0;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Induced subgraph on the largest component (ties: smallest component id).
/// Returns the subgraph plus the mapping old-id -> new-id (kNoNode if dropped).
struct LargestComponent {
  Graph graph;
  std::vector<NodeId> old_to_new;  // size = original n
  std::vector<NodeId> new_to_old;  // size = new n
};
[[nodiscard]] LargestComponent largest_component(const Graph& g);

}  // namespace nav::graph
