// generators.hpp — graph families used as workloads throughout the benches.
//
// The paper's claims are universal ("for any n-node graph"), so the benchmark
// suite exercises families covering the extreme regimes of the analysis:
//   * diameter Θ(n): path, cycle, caterpillar, comb — where the √n barrier
//     and the n^{1/3} scheme separate;
//   * diameter Θ(√n): 2D grid/torus — Kleinberg's classical setting;
//   * diameter Θ(log n): trees, G(n,p), random regular — where pathshape or
//     plain BFS already wins;
//   * pathological structures: lollipop, barbell, ring of cliques, subdivided
//     clique — stress tests for decomposition heuristics and schemes.
//
// All generators return connected simple graphs (random ones retry/repair)
// and are deterministic given the Rng state.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::graph {

// ---- deterministic families -------------------------------------------------

/// Path 0-1-...-(n-1). n >= 1.
[[nodiscard]] Graph make_path(NodeId n);

/// Cycle 0-1-...-(n-1)-0. n >= 3.
[[nodiscard]] Graph make_cycle(NodeId n);

/// Complete graph K_n. n >= 1.
[[nodiscard]] Graph make_complete(NodeId n);

/// Star: center 0, leaves 1..n-1. n >= 2.
[[nodiscard]] Graph make_star(NodeId n);

/// Complete `arity`-ary tree with exactly n nodes (BFS order, last level
/// partial). arity >= 2, n >= 1.
[[nodiscard]] Graph make_balanced_tree(NodeId n, std::uint32_t arity = 2);

/// Caterpillar: spine path of `spine` nodes, `legs` leaves per spine node.
[[nodiscard]] Graph make_caterpillar(NodeId spine, NodeId legs);

/// Comb: spine path of `spine` nodes, each with a tooth path of `tooth` nodes.
/// Total n = spine * (tooth + 1). Diameter Θ(spine + tooth).
[[nodiscard]] Graph make_comb(NodeId spine, NodeId tooth);

/// Spider: `legs` paths of length `leg_len` glued at a center node.
[[nodiscard]] Graph make_spider(NodeId legs, NodeId leg_len);

/// 2D grid rows×cols with 4-neighbour connectivity (no wraparound).
[[nodiscard]] Graph make_grid2d(NodeId rows, NodeId cols);

/// 2D torus rows×cols (wraparound). rows, cols >= 3 to stay simple.
[[nodiscard]] Graph make_torus2d(NodeId rows, NodeId cols);

/// 3D grid (no wraparound).
[[nodiscard]] Graph make_grid3d(NodeId x, NodeId y, NodeId z);

/// Hypercube Q_d: n = 2^d nodes. d <= 20.
[[nodiscard]] Graph make_hypercube(std::uint32_t dim);

/// Lollipop: K_k glued to a path of `tail` extra nodes.
[[nodiscard]] Graph make_lollipop(NodeId clique, NodeId tail);

/// Barbell: two K_k joined by a path of `bridge` intermediate nodes.
[[nodiscard]] Graph make_barbell(NodeId clique, NodeId bridge);

/// Ring of `count` cliques of size `clique`, consecutive cliques sharing one
/// bridge edge. Diameter Θ(count).
[[nodiscard]] Graph make_ring_of_cliques(NodeId count, NodeId clique);

/// Subdivided complete graph: K_q with every edge replaced by a path with
/// `seg` internal nodes. n = q + q(q-1)/2 * seg. Treewidth q-1, diameter
/// Θ(seg) — the "hard instance candidate" family from DESIGN.md.
[[nodiscard]] Graph make_subdivided_complete(NodeId q, NodeId seg);

// ---- random families --------------------------------------------------------

/// Erdős–Rényi G(n, p).
[[nodiscard]] Graph make_gnp(NodeId n, double p, Rng& rng);

/// G(n, p) conditioned on connectivity: retries, then reduces to largest
/// component + chains the leftovers if still unlucky (never fails).
[[nodiscard]] Graph make_connected_gnp(NodeId n, double p, Rng& rng);

/// Uniformly random labelled tree via a random Prüfer sequence.
[[nodiscard]] Graph make_random_tree(NodeId n, Rng& rng);

/// Random caterpillar: random spine length in [n/4, n/2], leaves attached to
/// uniform spine nodes.
[[nodiscard]] Graph make_random_caterpillar(NodeId n, Rng& rng);

/// Random d-regular-ish graph by the pairing model with defect repair:
/// self-loops/multi-edges are dropped, then the graph is connected by adding
/// edges between components (degrees may deviate slightly from d).
/// Expander-like: diameter O(log n) w.h.p. Requires n*d even, d >= 3.
[[nodiscard]] Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng);

/// Kleinberg-style base grid: torus2d(side, side) — convenience wrapper used
/// by the Kleinberg baseline experiments.
[[nodiscard]] Graph make_kleinberg_base(NodeId side);

}  // namespace nav::graph
