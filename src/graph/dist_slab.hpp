// dist_slab.hpp — compact storage widths for distance rows.
//
// Dist is uint32 everywhere above the storage layer, but a distance row only
// needs ceil(log2(diameter + 2)) bits: a torus row whose entries never exceed
// 200 wastes 3 of every 4 bytes in a uint32 slab. This header makes the
// width a *storage* decision — DistanceMatrix and TargetDistanceCache pack
// rows at uint8/uint16/uint32 and widen on read — without changing the Dist
// type the routers and RouteService consume.
//
// Encoding: each narrow width reserves its numeric maximum as the infinity
// sentinel (0xFF for u8, 0xFFFF for u16), so max_finite(width) is max - 1.
// Narrowing a value above max_finite is a *saturation* — the storage was
// declared too narrow for the graph — and the oracles turn it into a loud
// std::invalid_argument instead of a silently wrong distance.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/bfs.hpp"
#include "runtime/assert.hpp"

namespace nav::graph {

/// Bytes per stored distance entry. The enum value IS the byte width.
enum class DistWidth : std::uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

[[nodiscard]] constexpr std::size_t width_bytes(DistWidth w) noexcept {
  return static_cast<std::size_t>(w);
}

/// The stored bit pattern that decodes to kInfDist at this width.
[[nodiscard]] constexpr std::uint32_t narrow_inf(DistWidth w) noexcept {
  switch (w) {
    case DistWidth::kU8: return 0xFFu;
    case DistWidth::kU16: return 0xFFFFu;
    default: return kInfDist;
  }
}

/// Largest finite distance the width can hold (one under the sentinel).
[[nodiscard]] constexpr Dist max_finite(DistWidth w) noexcept {
  return w == DistWidth::kU32 ? kInfDist - 1 : narrow_inf(w) - 1;
}

/// Smallest width whose max_finite covers `bound` (a diameter upper bound).
[[nodiscard]] constexpr DistWidth width_for_bound(Dist bound) noexcept {
  if (bound <= max_finite(DistWidth::kU8)) return DistWidth::kU8;
  if (bound <= max_finite(DistWidth::kU16)) return DistWidth::kU16;
  return DistWidth::kU32;
}

/// Spec token for the width ("u8" | "u16" | "u32").
[[nodiscard]] constexpr const char* width_token(DistWidth w) noexcept {
  switch (w) {
    case DistWidth::kU8: return "u8";
    case DistWidth::kU16: return "u16";
    default: return "u32";
  }
}

/// Parses a width spec token; `spec` is the enclosing spec string named in
/// the std::invalid_argument on failure.
[[nodiscard]] inline DistWidth parse_dist_width(const std::string& token,
                                                const std::string& spec) {
  if (token == "u8") return DistWidth::kU8;
  if (token == "u16") return DistWidth::kU16;
  if (token == "u32") return DistWidth::kU32;
  throw std::invalid_argument("bad width '" + token +
                              "' (u8 | u16 | u32 | auto) in spec: " + spec);
}

namespace detail {

template <typename Narrow>
void widen_row_impl(const std::uint8_t* src, std::span<Dist> dst) {
  const auto* packed = reinterpret_cast<const Narrow*>(src);
  constexpr Narrow inf = static_cast<Narrow>(~Narrow{0});
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = packed[i] == inf ? kInfDist : static_cast<Dist>(packed[i]);
  }
}

template <typename Narrow>
[[nodiscard]] bool narrow_row_impl(std::span<const Dist> src,
                                   std::uint8_t* dst) {
  auto* packed = reinterpret_cast<Narrow*>(dst);
  constexpr Narrow inf = static_cast<Narrow>(~Narrow{0});
  constexpr Dist top = static_cast<Dist>(inf) - 1;
  bool saturated = false;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == kInfDist) {
      packed[i] = inf;
    } else if (src[i] > top) {
      saturated = true;
      packed[i] = inf;
    } else {
      packed[i] = static_cast<Narrow>(src[i]);
    }
  }
  return saturated;
}

}  // namespace detail

/// Decodes one packed row (dst.size() entries at `width`) into Dist values;
/// the sentinel becomes kInfDist. u32 rows should be read in place instead.
inline void widen_row(const std::uint8_t* src, DistWidth width,
                      std::span<Dist> dst) {
  switch (width) {
    case DistWidth::kU8:
      detail::widen_row_impl<std::uint8_t>(src, dst);
      break;
    case DistWidth::kU16:
      detail::widen_row_impl<std::uint16_t>(src, dst);
      break;
    default:
      detail::widen_row_impl<std::uint32_t>(src, dst);
      break;
  }
}

/// Decodes a single packed entry.
[[nodiscard]] inline Dist widen_entry(const std::uint8_t* row, DistWidth width,
                                      std::size_t i) noexcept {
  switch (width) {
    case DistWidth::kU8: {
      const std::uint8_t v = row[i];
      return v == 0xFFu ? kInfDist : static_cast<Dist>(v);
    }
    case DistWidth::kU16: {
      const std::uint16_t v = reinterpret_cast<const std::uint16_t*>(row)[i];
      return v == 0xFFFFu ? kInfDist : static_cast<Dist>(v);
    }
    default:
      return reinterpret_cast<const Dist*>(row)[i];
  }
}

/// Packs a Dist row at `width` into dst (src.size() * width_bytes bytes).
/// Returns true when any finite value exceeded max_finite(width) — such
/// entries are stored as the sentinel, and the caller MUST treat the row as
/// invalid (the oracles throw).
[[nodiscard]] inline bool narrow_row(std::span<const Dist> src, DistWidth width,
                                     std::uint8_t* dst) {
  switch (width) {
    case DistWidth::kU8:
      return detail::narrow_row_impl<std::uint8_t>(src, dst);
    case DistWidth::kU16:
      return detail::narrow_row_impl<std::uint16_t>(src, dst);
    default:
      return detail::narrow_row_impl<std::uint32_t>(src, dst);
  }
}

}  // namespace nav::graph
