#include "routing/trial_runner.hpp"

#include <algorithm>

#include "graph/diameter.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::routing {

std::vector<std::pair<NodeId, NodeId>> select_trial_pairs(
    const Graph& g, const TrialConfig& config, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  switch (config.policy) {
    case TrialConfig::PairPolicy::kAllPairs:
      for (NodeId s = 0; s < n; ++s)
        for (NodeId t = 0; t < n; ++t)
          if (s != t) pairs.emplace_back(s, t);
      return pairs;
    case TrialConfig::PairPolicy::kPeripheralPlusRandom: {
      const auto peripheral = graph::peripheral_pair(g);
      if (peripheral.a != peripheral.b) {
        pairs.emplace_back(peripheral.a, peripheral.b);
        pairs.emplace_back(peripheral.b, peripheral.a);
      }
      break;
    }
    case TrialConfig::PairPolicy::kRandom:
      break;
  }
  NAV_REQUIRE(n >= 2, "pair selection needs n >= 2");
  for (std::size_t added = 0; added < config.num_pairs;) {
    const auto s = static_cast<NodeId>(random_index(rng, n));
    const auto t = static_cast<NodeId>(random_index(rng, n));
    if (s != t) {
      pairs.emplace_back(s, t);
      ++added;
    }
  }
  return pairs;
}

PairEstimate estimate_routed_pair(const Router& router,
                                  const graph::DistanceOracle& oracle,
                                  NodeId s, NodeId t,
                                  const core::AugmentationScheme* scheme,
                                  std::size_t resamples, Rng rng,
                                  bool parallel) {
  NAV_REQUIRE(resamples >= 1, "need at least one resample");
  // Warm the oracle for t once so parallel replicates share the BFS.
  (void)oracle.distances_to(t);

  std::vector<double> steps(resamples, 0.0);
  std::vector<double> longs(resamples, 0.0);
  auto body = [&](std::size_t r) {
    const auto result = router.route(s, t, scheme, rng.child(r));
    steps[r] = static_cast<double>(result.steps);
    longs[r] = static_cast<double>(result.long_links_used);
  };
  if (parallel) {
    nav::parallel_for(0, resamples, body);
  } else {
    for (std::size_t r = 0; r < resamples; ++r) body(r);
  }

  nav::RunningStats step_stats, long_stats;
  for (std::size_t r = 0; r < resamples; ++r) {
    step_stats.add(steps[r]);
    long_stats.add(longs[r]);
  }
  PairEstimate est;
  est.s = s;
  est.t = t;
  est.distance = oracle.distance(s, t);
  est.mean_steps = step_stats.mean();
  est.ci_halfwidth = step_stats.ci_halfwidth();
  est.max_steps = step_stats.max();
  est.mean_long_links = long_stats.mean();
  return est;
}

GreedyDiameterEstimate estimate_routed_diameter(
    const Router& router, const core::AugmentationScheme* scheme,
    const graph::DistanceOracle& oracle, const TrialConfig& config, Rng rng) {
  const Graph& g = router.graph();
  NAV_REQUIRE(g.num_nodes() >= 2, "graph too small to route");
  Rng pair_rng = rng.child(0xA11);
  const auto pairs = select_trial_pairs(g, config, pair_rng);
  NAV_REQUIRE(!pairs.empty(), "no source/target pairs selected");

  GreedyDiameterEstimate out;
  out.pairs.resize(pairs.size());
  // Parallelism lives inside estimate_routed_pair (over resamples); pairs
  // run sequentially so each target's BFS is computed once and reused.
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    out.pairs[p] = estimate_routed_pair(router, oracle, pairs[p].first,
                                        pairs[p].second, scheme,
                                        config.resamples, rng.child(p + 1),
                                        config.parallel);
  }
  nav::RunningStats all;
  for (const auto& pe : out.pairs) {
    all.add(pe.mean_steps);
    if (pe.mean_steps > out.max_mean_steps) {
      out.max_mean_steps = pe.mean_steps;
      out.max_ci_halfwidth = pe.ci_halfwidth;
    }
  }
  out.overall_mean_steps = all.mean();
  out.trials = pairs.size() * config.resamples;
  return out;
}

PairEstimate estimate_pair(const Graph& g,
                           const core::AugmentationScheme* scheme,
                           const graph::DistanceOracle& oracle, NodeId s,
                           NodeId t, std::size_t resamples, Rng rng,
                           bool parallel) {
  GreedyRouter router(g, oracle);
  return estimate_routed_pair(router, oracle, s, t, scheme, resamples, rng,
                              parallel);
}

GreedyDiameterEstimate estimate_greedy_diameter(
    const Graph& g, const core::AugmentationScheme* scheme,
    const graph::DistanceOracle& oracle, const TrialConfig& config, Rng rng) {
  GreedyRouter router(g, oracle);
  return estimate_routed_diameter(router, scheme, oracle, config, rng);
}

}  // namespace nav::routing
