// router_factory.hpp — build routers by name (mirrors core/scheme_factory).
//
// Recognised specs:
//   "greedy"          the paper's greedy process (§1)
//   "lookahead:<d>"   depth-d neighbour-of-neighbour lookahead (STOC'04 NoN
//                     at d = 1); "lookahead:0" is exactly "greedy", so the
//                     depth axis sweeps cleanly from no awareness upward
#pragma once

#include <string>
#include <vector>

#include "routing/router.hpp"

namespace nav::routing {

/// Builds the router for `spec` over graph g + oracle (both must outlive the
/// returned router). Throws std::invalid_argument on unknown specs.
[[nodiscard]] RouterPtr make_router(const std::string& spec, const Graph& g,
                                    const graph::DistanceOracle& oracle);

/// All specs suitable for a cross-router comparison sweep.
[[nodiscard]] std::vector<std::string> standard_router_specs();

}  // namespace nav::routing
