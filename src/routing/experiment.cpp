#include "routing/experiment.hpp"

#include <map>

#include "api/experiment.hpp"

namespace nav::routing {

std::vector<SweepRow> run_sweep(const SweepConfig& config) {
  const auto result = api::Experiment::on(config.family)
                          .sizes(config.sizes)
                          .schemes(config.schemes)
                          .routers({"greedy"})
                          .trials(config.trials)
                          .seed(config.seed)
                          .dense_oracle_limit(config.dense_oracle_limit)
                          .run();
  std::vector<SweepRow> rows;
  rows.reserve(result.cells.size());
  for (const auto& cell : result.cells) {
    SweepRow row;
    row.family = cell.family;
    row.scheme = cell.scheme;
    row.n_requested = cell.n_requested;
    row.n_actual = cell.n_actual;
    row.m = cell.m;
    row.diameter_lb = cell.diameter_lb;
    row.greedy_diameter = cell.greedy_diameter;
    row.mean_steps = cell.mean_steps;
    row.ci_halfwidth = cell.ci_halfwidth;
    row.seconds = cell.seconds;
    rows.push_back(std::move(row));
  }
  return rows;
}

nav::Table sweep_table(const std::vector<SweepRow>& rows) {
  nav::Table table({"family", "scheme", "n", "m", "diam>=", "greedy-diam",
                    "mean", "ci95", "sec"});
  for (const auto& r : rows) {
    table.add_row({r.family, r.scheme, nav::Table::integer(r.n_actual),
                   nav::Table::integer(r.m), nav::Table::integer(r.diameter_lb),
                   nav::Table::num(r.greedy_diameter, 1),
                   nav::Table::num(r.mean_steps, 1),
                   nav::Table::num(r.ci_halfwidth, 1),
                   nav::Table::num(r.seconds, 2)});
  }
  return table;
}

std::vector<SchemeFit> fit_exponents(const std::vector<SweepRow>& rows) {
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>> by;
  std::vector<std::string> order;
  for (const auto& r : rows) {
    if (by.find(r.scheme) == by.end()) order.push_back(r.scheme);
    by[r.scheme].first.push_back(static_cast<double>(r.n_actual));
    by[r.scheme].second.push_back(r.greedy_diameter);
  }
  std::vector<SchemeFit> fits;
  for (const auto& scheme : order) {
    fits.push_back({scheme, nav::fit_power_law(by[scheme].first, by[scheme].second)});
  }
  return fits;
}

nav::Table fit_table(const std::vector<SchemeFit>& fits) {
  nav::Table table({"scheme", "exponent", "R^2"});
  for (const auto& f : fits) {
    table.add_row({f.scheme, nav::Table::num(f.fit.slope, 3),
                   nav::Table::num(f.fit.r_squared, 3)});
  }
  return table;
}

}  // namespace nav::routing
