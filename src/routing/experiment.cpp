#include "routing/experiment.hpp"

#include <map>
#include <memory>

#include "graph/diameter.hpp"
#include "runtime/timer.hpp"

namespace nav::routing {

std::vector<SweepRow> run_sweep(const SweepConfig& config) {
  NAV_REQUIRE(!config.sizes.empty(), "sweep needs sizes");
  NAV_REQUIRE(!config.schemes.empty(), "sweep needs schemes");
  const auto& fam = graph::family(config.family);

  std::vector<SweepRow> rows;
  Rng root(config.seed);
  for (std::size_t si = 0; si < config.sizes.size(); ++si) {
    const auto n_req = config.sizes[si];
    Rng graph_rng = root.child(0x6aaf).child(si);
    const graph::Graph g = fam.make(n_req, graph_rng);
    NAV_REQUIRE(g.num_nodes() >= 2, "family produced a trivial graph");

    std::unique_ptr<graph::DistanceOracle> oracle;
    if (g.num_nodes() <= config.dense_oracle_limit) {
      oracle = std::make_unique<graph::DistanceMatrix>(g);
    } else {
      oracle = std::make_unique<graph::TargetDistanceCache>(
          g, config.trials.num_pairs + 8);
    }
    const auto diameter_lb = graph::double_sweep_lower_bound(g);

    for (std::size_t ki = 0; ki < config.schemes.size(); ++ki) {
      const auto& spec = config.schemes[ki];
      nav::Timer timer;
      Rng scheme_rng = root.child(0x5c4e).child(si).child(ki);
      const auto scheme = core::make_scheme(spec, g, scheme_rng);
      const auto estimate = estimate_greedy_diameter(
          g, scheme.get(), *oracle, config.trials,
          root.child(0x7a1a).child(si).child(ki));

      SweepRow row;
      row.family = config.family;
      row.scheme = spec;
      row.n_requested = n_req;
      row.n_actual = g.num_nodes();
      row.m = g.num_edges();
      row.diameter_lb = diameter_lb;
      row.greedy_diameter = estimate.max_mean_steps;
      row.mean_steps = estimate.overall_mean_steps;
      row.ci_halfwidth = estimate.max_ci_halfwidth;
      row.seconds = timer.seconds();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

nav::Table sweep_table(const std::vector<SweepRow>& rows) {
  nav::Table table({"family", "scheme", "n", "m", "diam>=", "greedy-diam",
                    "mean", "ci95", "sec"});
  for (const auto& r : rows) {
    table.add_row({r.family, r.scheme, nav::Table::integer(r.n_actual),
                   nav::Table::integer(r.m), nav::Table::integer(r.diameter_lb),
                   nav::Table::num(r.greedy_diameter, 1),
                   nav::Table::num(r.mean_steps, 1),
                   nav::Table::num(r.ci_halfwidth, 1),
                   nav::Table::num(r.seconds, 2)});
  }
  return table;
}

std::vector<SchemeFit> fit_exponents(const std::vector<SweepRow>& rows) {
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>> by;
  std::vector<std::string> order;
  for (const auto& r : rows) {
    if (by.find(r.scheme) == by.end()) order.push_back(r.scheme);
    by[r.scheme].first.push_back(static_cast<double>(r.n_actual));
    by[r.scheme].second.push_back(r.greedy_diameter);
  }
  std::vector<SchemeFit> fits;
  for (const auto& scheme : order) {
    fits.push_back({scheme, nav::fit_power_law(by[scheme].first, by[scheme].second)});
  }
  return fits;
}

nav::Table fit_table(const std::vector<SchemeFit>& fits) {
  nav::Table table({"scheme", "exponent", "R^2"});
  for (const auto& f : fits) {
    table.add_row({f.scheme, nav::Table::num(f.fit.slope, 3),
                   nav::Table::num(f.fit.r_squared, 3)});
  }
  return table;
}

}  // namespace nav::routing
