// exact_analysis.hpp — closed-form E(φ, s, t) without Monte Carlo.
//
// Greedy routing strictly decreases the distance to the target at every
// step, so the expected remaining steps T(u) are well-defined by dynamic
// programming over distance levels:
//
//   T(t) = 0
//   T(u) = Σ_v φ_u(v) · (1 + T(step(u, v)))  +  (1 - Σ_v φ_u(v)) · (1 + T(b(u)))
//
// where b(u) is the deterministic best local neighbour (smallest distance,
// ties to smallest id — matching GreedyRouter) and step(u, v) is v when the
// contact v is strictly closer to t than b(u), else b(u). Processing nodes in
// increasing dist(·, t) makes every referenced T already available.
//
// Uses: the exact value E(φ, s, t) = T(s) validates the Monte-Carlo trial
// runner (tests), and exact greedy diameters are tractable for n up to a few
// thousand (cost: one probability_row per node per target).
#pragma once

#include <vector>

#include "core/scheme.hpp"
#include "graph/bfs.hpp"

namespace nav::routing {

/// T(u) for all u, for a fixed target. `scheme` may be nullptr (no long
/// links: T(u) = dist(u, t)). Requires the scheme to support exact
/// probabilities (throws std::logic_error otherwise) and the graph to be
/// connected (throws std::invalid_argument).
[[nodiscard]] std::vector<double> exact_expected_steps(
    const graph::Graph& g, const core::AugmentationScheme* scheme,
    graph::NodeId target);

/// E(φ, s, t) — one entry of the table above.
[[nodiscard]] double exact_pair_expectation(const graph::Graph& g,
                                            const core::AugmentationScheme* scheme,
                                            graph::NodeId source,
                                            graph::NodeId target);

/// Exact greedy diameter max_{s,t} E(φ, s, t). One probability_row per
/// (node, target) pair — O(n²) rows — intended for n up to a few hundred.
struct ExactGreedyDiameter {
  double value = 0.0;
  graph::NodeId argmax_source = 0;
  graph::NodeId argmax_target = 0;
};
[[nodiscard]] ExactGreedyDiameter exact_greedy_diameter(
    const graph::Graph& g, const core::AugmentationScheme* scheme);

}  // namespace nav::routing
