#include "routing/greedy_router.hpp"

namespace nav::routing {

template <typename ContactFn>
RouteResult GreedyRouter::route_impl(NodeId s, NodeId t,
                                     std::span<const Dist> dist,
                                     ContactFn&& contact_of,
                                     bool record_trace) const {
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  NAV_REQUIRE(dist.size() == graph_.num_nodes(),
              "target distance vector size mismatch");
  NAV_REQUIRE(dist[s] != graph::kInfDist, "target unreachable from source");

  RouteResult result;
  result.initial_distance = dist[s];
  NodeId u = s;
  if (record_trace) result.trace.push_back(u);
  while (u != t) {
    // Best local neighbour (smallest distance; ties -> smallest id, which is
    // the iteration order of the sorted adjacency).
    NodeId best = graph::kNoNode;
    Dist best_dist = graph::kInfDist;
    for (const NodeId v : graph_.neighbors(u)) {
      if (dist[v] < best_dist) {
        best_dist = dist[v];
        best = v;
      }
    }
    bool via_long = false;
    const NodeId contact = contact_of(u);
    if (contact != core::kNoContact && contact < graph_.num_nodes() &&
        dist[contact] < best_dist) {
      best = contact;
      best_dist = dist[contact];
      via_long = true;
    }
    // On an exact field, connectivity gives a local neighbour at dist[u] - 1.
    // An approximate field (landmark upper bound) is still 1-Lipschitz but
    // can bottom out at a local minimum: terminate there, reached stays
    // false and the partial trace/steps survive.
    if (best == graph::kNoNode || best_dist >= dist[u]) {
      NAV_ASSERT(!exact_);
      return result;
    }
    u = best;
    ++result.steps;
    result.long_links_used += via_long ? 1u : 0u;
    if (record_trace) {
      result.trace.push_back(u);
      result.long_flags.push_back(via_long ? 1 : 0);
    }
  }
  result.reached = true;
  return result;
}

RouteResult GreedyRouter::route(NodeId s, NodeId t,
                                const AugmentationScheme* scheme, Rng rng,
                                bool record_trace) const {
  // One copy of the scheme dispatch: resolve the distance vector, then take
  // the batch entry point (the temporary DistVecPtr outlives the call).
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  return route_resolved(s, t, *oracle_.distances_to(t), scheme, rng,
                        record_trace);
}

RouteResult GreedyRouter::route_resolved(NodeId s, NodeId t,
                                         std::span<const Dist> target_dist,
                                         const AugmentationScheme* scheme,
                                         Rng rng, bool record_trace) const {
  if (scheme == nullptr) {
    return route_impl(
        s, t, target_dist, [](NodeId) { return core::kNoContact; },
        record_trace);
  }
  NAV_REQUIRE(scheme->num_nodes() == graph_.num_nodes(),
              "scheme/graph size mismatch");
  return route_impl(
      s, t, target_dist,
      [&](NodeId u) { return scheme->sample_contact(u, rng); }, record_trace);
}

RouteResult GreedyRouter::route_with_contacts(NodeId s, NodeId t,
                                              std::span<const NodeId> contacts,
                                              bool record_trace) const {
  NAV_REQUIRE(contacts.size() == graph_.num_nodes(),
              "contact vector size mismatch");
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  return route_impl(
      s, t, *oracle_.distances_to(t), [&](NodeId u) { return contacts[u]; },
      record_trace);
}

}  // namespace nav::routing
