// trial_runner.hpp — Monte-Carlo estimation of E(φ, s, t) and the greedy
// diameter diam(G, φ) = max_{s,t} E(φ, s, t).
//
// For each selected (s, t) pair the runner redraws the augmentation
// `resamples` times and routes once per draw (lazy sampling = one fresh
// augmented graph per trial). Pair selection:
//   * kPeripheralPlusRandom (default): the double-sweep peripheral pair —
//     which dominates the maximum in every family studied here — plus
//     uniformly random distinct pairs;
//   * kRandom: only random pairs;
//   * kAllPairs: every ordered pair with s != t (small n / tests).
//
// The estimators are parameterized over the routing process (Router): the
// `estimate_routed_*` entry points accept any registry router, while the
// classic `estimate_greedy_diameter` / `estimate_pair` names remain as
// greedy-router conveniences.
//
// Determinism: trial (pair p, replicate r) uses rng.child(p).child(r); the
// result is independent of thread count and schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/greedy_router.hpp"
#include "runtime/stats.hpp"

namespace nav::routing {

struct TrialConfig {
  enum class PairPolicy { kPeripheralPlusRandom, kRandom, kAllPairs };
  PairPolicy policy = PairPolicy::kPeripheralPlusRandom;
  std::size_t num_pairs = 24;   // random pairs (ignored for kAllPairs)
  std::size_t resamples = 16;   // augmentation redraws per pair
  bool parallel = true;         // use the global thread pool
};

struct PairEstimate {
  NodeId s = 0;
  NodeId t = 0;
  Dist distance = 0;          // dist_G(s, t)
  double mean_steps = 0.0;    // estimate of E(φ, s, t)
  double ci_halfwidth = 0.0;  // 95% normal CI on the mean
  double max_steps = 0.0;
  double mean_long_links = 0.0;
};

struct GreedyDiameterEstimate {
  std::vector<PairEstimate> pairs;
  double max_mean_steps = 0.0;   // the greedy-diameter estimate
  double overall_mean_steps = 0.0;
  double max_ci_halfwidth = 0.0; // CI of the maximising pair
  std::size_t trials = 0;
};

/// The estimator's pair selection, exposed so batch drivers
/// (api::RouteService) can reproduce the exact trial grid: peripheral pair
/// first (policy-dependent), then random distinct pairs drawn from `rng`.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> select_trial_pairs(
    const Graph& g, const TrialConfig& config, Rng& rng);

/// Runs the estimation under an arbitrary routing process. `scheme` may be
/// nullptr (no long links). The graph is the router's own (router.graph()),
/// so a graph/router mismatch is unrepresentable; the router must be built
/// over `oracle`.
[[nodiscard]] GreedyDiameterEstimate estimate_routed_diameter(
    const Router& router, const core::AugmentationScheme* scheme,
    const graph::DistanceOracle& oracle, const TrialConfig& config, Rng rng);

/// Single-pair estimate under an arbitrary routing process.
[[nodiscard]] PairEstimate estimate_routed_pair(
    const Router& router, const graph::DistanceOracle& oracle, NodeId s,
    NodeId t, const core::AugmentationScheme* scheme, std::size_t resamples,
    Rng rng, bool parallel = true);

/// Greedy-router convenience (the paper's process).
[[nodiscard]] GreedyDiameterEstimate estimate_greedy_diameter(
    const Graph& g, const core::AugmentationScheme* scheme,
    const graph::DistanceOracle& oracle, const TrialConfig& config, Rng rng);

/// Single-pair greedy estimate (used by tests and the phase analysis bench).
[[nodiscard]] PairEstimate estimate_pair(const Graph& g,
                                         const core::AugmentationScheme* scheme,
                                         const graph::DistanceOracle& oracle,
                                         NodeId s, NodeId t,
                                         std::size_t resamples, Rng rng,
                                         bool parallel = true);

}  // namespace nav::routing
