#include "routing/lookahead_router.hpp"

namespace nav::routing {

RouteResult LookaheadRouter::route(NodeId s, NodeId t,
                                   std::span<const NodeId> contacts,
                                   bool record_trace) const {
  NAV_REQUIRE(contacts.size() == graph_.num_nodes(),
              "contact vector size mismatch");
  return route(
      s, t, [&contacts](NodeId u) { return contacts[u]; }, record_trace);
}

RouteResult LookaheadRouter::route(NodeId s, NodeId t, const ContactFn& contacts,
                                   bool record_trace) const {
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  const auto dist_ptr = oracle_.distances_to(t);
  const auto& dist = *dist_ptr;
  NAV_REQUIRE(dist[s] != graph::kInfDist, "target unreachable from source");

  auto contact_distance = [&](NodeId w) -> Dist {
    const NodeId c = contacts(w);
    if (c == core::kNoContact || c >= graph_.num_nodes()) return graph::kInfDist;
    return dist[c];
  };

  RouteResult result;
  result.initial_distance = dist[s];
  NodeId u = s;
  if (record_trace) result.trace.push_back(u);

  auto hop = [&](NodeId next, bool via_long) {
    u = next;
    ++result.steps;
    result.long_links_used += via_long ? 1u : 0u;
    if (record_trace) {
      result.trace.push_back(next);
      result.long_flags.push_back(via_long ? 1 : 0);
    }
  };

  while (u != t) {
    const Dist du = dist[u];
    // Candidates: local neighbours and u's own long-range contact.
    NodeId best = graph::kNoNode;
    Dist best_score = graph::kInfDist;
    bool best_via_long = false;
    auto offer = [&](NodeId w, bool via_long) {
      const Dist score = std::min(dist[w], contact_distance(w));
      // Prefer strictly better scores; among ties prefer a node that is
      // itself closer (avoids taking a 2-step move for nothing).
      if (score < best_score ||
          (score == best_score && best != graph::kNoNode &&
           dist[w] < dist[best])) {
        best = w;
        best_score = score;
        best_via_long = via_long;
      }
    };
    for (const NodeId w : graph_.neighbors(u)) offer(w, false);
    const NodeId own = contacts(u);
    if (own != core::kNoContact && own < graph_.num_nodes()) offer(own, true);

    // A local neighbour on a shortest path scores <= du - 1.
    NAV_ASSERT(best != graph::kNoNode && best_score < du);
    hop(best, best_via_long);
    if (u == t) break;
    if (dist[u] >= du) {
      // The move was motivated by u's contact: commit to the long link now.
      const NodeId c = contacts(u);
      NAV_ASSERT(c != core::kNoContact && c < graph_.num_nodes() &&
                 dist[c] < du);
      hop(c, true);
    }
  }
  result.reached = true;
  NAV_ASSERT(result.steps <= 2u * result.initial_distance);
  return result;
}

}  // namespace nav::routing
