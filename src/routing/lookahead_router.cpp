#include "routing/lookahead_router.hpp"

#include <algorithm>

namespace nav::routing {

RouteResult LookaheadRouter::route(NodeId s, NodeId t,
                                   const AugmentationScheme* scheme, Rng rng,
                                   bool record_trace) const {
  // One copy of the scheme dispatch: resolve the distance vector, then take
  // the batch entry point (the temporary DistVecPtr outlives the call).
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  return route_resolved(s, t, *oracle_.distances_to(t), scheme, rng,
                        record_trace);
}

RouteResult LookaheadRouter::route_resolved(NodeId s, NodeId t,
                                            std::span<const Dist> target_dist,
                                            const AugmentationScheme* scheme,
                                            Rng rng, bool record_trace) const {
  if (scheme == nullptr) {
    return route_impl(
        s, t, target_dist, [](NodeId) { return core::kNoContact; },
        record_trace);
  }
  NAV_REQUIRE(scheme->num_nodes() == graph_.num_nodes(),
              "scheme/graph size mismatch");
  core::MemoContacts contacts(*scheme, rng);
  return route_impl(
      s, t, target_dist, [&contacts](NodeId u) { return contacts(u); },
      record_trace);
}

RouteResult LookaheadRouter::route(NodeId s, NodeId t,
                                   std::span<const NodeId> contacts,
                                   bool record_trace) const {
  NAV_REQUIRE(contacts.size() == graph_.num_nodes(),
              "contact vector size mismatch");
  return route(
      s, t, [&contacts](NodeId u) { return contacts[u]; }, record_trace);
}

RouteResult LookaheadRouter::route(NodeId s, NodeId t, const ContactFn& contacts,
                                   bool record_trace) const {
  NAV_REQUIRE(t < graph_.num_nodes(), "route endpoint out of range");
  const auto dist_ptr = oracle_.distances_to(t);
  return route_impl(s, t, *dist_ptr, contacts, record_trace);
}

RouteResult LookaheadRouter::route_impl(NodeId s, NodeId t,
                                        std::span<const Dist> dist,
                                        const ContactFn& contacts,
                                        bool record_trace) const {
  NAV_REQUIRE(s < graph_.num_nodes() && t < graph_.num_nodes(),
              "route endpoint out of range");
  NAV_REQUIRE(dist.size() == graph_.num_nodes(),
              "target distance vector size mismatch");
  NAV_REQUIRE(dist[s] != graph::kInfDist, "target unreachable from source");

  const NodeId n = graph_.num_nodes();
  // Best distance reachable from w along its chain of <= depth long links.
  auto chain_score = [&](NodeId w) -> Dist {
    Dist best = dist[w];
    NodeId x = w;
    for (unsigned k = 0; k < depth_; ++k) {
      x = contacts(x);
      if (x == core::kNoContact || x >= n) break;
      best = std::min(best, dist[x]);
    }
    return best;
  };

  RouteResult result;
  result.initial_distance = dist[s];
  NodeId u = s;
  if (record_trace) result.trace.push_back(u);

  auto hop = [&](NodeId next, bool via_long) {
    u = next;
    ++result.steps;
    result.long_links_used += via_long ? 1u : 0u;
    if (record_trace) {
      result.trace.push_back(next);
      result.long_flags.push_back(via_long ? 1 : 0);
    }
  };

  while (u != t) {
    const Dist du = dist[u];
    // Candidates: local neighbours and u's own long-range contact.
    NodeId best = graph::kNoNode;
    Dist best_score = graph::kInfDist;
    bool best_via_long = false;
    auto offer = [&](NodeId w, bool via_long) {
      const Dist score = chain_score(w);
      // Prefer strictly better scores; among ties prefer a node that is
      // itself closer (avoids taking a multi-step move for nothing).
      if (score < best_score ||
          (score == best_score && best != graph::kNoNode &&
           dist[w] < dist[best])) {
        best = w;
        best_score = score;
        best_via_long = via_long;
      }
    };
    for (const NodeId w : graph_.neighbors(u)) offer(w, false);
    const NodeId own = contacts(u);
    if (own != core::kNoContact && own < n) offer(own, true);

    // On an exact field a local neighbour on a shortest path scores
    // <= du - 1. An approximate field can stall: no candidate (not even via
    // its chain) improves on du. Terminate; reached stays false. The commit
    // loop below never runs on a stall-free hop sequence whose scores lied —
    // scores come from the same dist array, so a committed chain still
    // delivers its promised drop.
    if (best == graph::kNoNode || best_score >= du) {
      NAV_ASSERT(!exact_);
      return result;
    }
    hop(best, best_via_long);
    // If the move was motivated by the candidate's chain, commit: follow the
    // long links until the promised distance drop materialises. The scorer
    // saw the same (consistent) contacts, so the drop arrives within depth_
    // links.
    unsigned followed = 0;
    while (u != t && dist[u] >= du) {
      NAV_ASSERT(followed < depth_);
      const NodeId c = contacts(u);
      NAV_ASSERT(c != core::kNoContact && c < n);
      hop(c, true);
      ++followed;
    }
  }
  result.reached = true;
  NAV_ASSERT(result.steps <=
             (1u + depth_) * static_cast<std::uint32_t>(result.initial_distance));
  return result;
}

}  // namespace nav::routing
