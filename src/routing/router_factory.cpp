#include "routing/router_factory.hpp"

#include <stdexcept>

#include "routing/greedy_router.hpp"
#include "routing/lookahead_router.hpp"
#include "runtime/parse.hpp"

namespace nav::routing {

RouterPtr make_router(const std::string& spec, const Graph& g,
                      const graph::DistanceOracle& oracle) {
  if (spec == "greedy") return std::make_unique<GreedyRouter>(g, oracle);
  if (spec.rfind("lookahead:", 0) == 0) {
    const unsigned depth = parse_spec_number<unsigned>(spec.substr(10), spec);
    // Depth 0 means "no awareness beyond your own link" — plain greedy.
    if (depth == 0) return std::make_unique<GreedyRouter>(g, oracle);
    return std::make_unique<LookaheadRouter>(g, oracle, depth);
  }
  throw std::invalid_argument("unknown router spec: " + spec);
}

std::vector<std::string> standard_router_specs() {
  return {"greedy", "lookahead:1"};
}

}  // namespace nav::routing
