#include "routing/router_factory.hpp"

#include <charconv>
#include <stdexcept>

#include "routing/greedy_router.hpp"
#include "routing/lookahead_router.hpp"

namespace nav::routing {

namespace {

unsigned parse_depth(const std::string& spec, std::size_t prefix_len) {
  const std::string digits = spec.substr(prefix_len);
  if (digits.empty()) {
    throw std::invalid_argument("router spec missing depth: " + spec);
  }
  // from_chars into unsigned rejects signs, non-digits, and overflow; the
  // end-of-token check catches trailing garbage.
  unsigned depth = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), depth);
  if (ec != std::errc() || end != digits.data() + digits.size()) {
    throw std::invalid_argument("bad lookahead depth in router spec: " + spec);
  }
  return depth;
}

}  // namespace

RouterPtr make_router(const std::string& spec, const Graph& g,
                      const graph::DistanceOracle& oracle) {
  if (spec == "greedy") return std::make_unique<GreedyRouter>(g, oracle);
  if (spec.rfind("lookahead:", 0) == 0) {
    const unsigned depth = parse_depth(spec, 10);
    // Depth 0 means "no awareness beyond your own link" — plain greedy.
    if (depth == 0) return std::make_unique<GreedyRouter>(g, oracle);
    return std::make_unique<LookaheadRouter>(g, oracle, depth);
  }
  throw std::invalid_argument("unknown router spec: " + spec);
}

std::vector<std::string> standard_router_specs() {
  return {"greedy", "lookahead:1"};
}

}  // namespace nav::routing
