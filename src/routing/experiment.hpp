// experiment.hpp — LEGACY sweep driver, now a thin shim over api::Experiment.
//
// An experiment is a grid: graph family × sizes × schemes. For each cell the
// driver builds the instance, estimates the greedy diameter, and emits a row.
// New code should use the nav::api facade (nav/nav.hpp): api::Experiment adds
// a router axis and ResultSink streaming on top of this grid; run_sweep
// forwards to it with the classic greedy router and flattens the cells back
// into SweepRows. The types below are kept so existing callers and tests
// keep compiling. Note: the facade derives per-cell trial randomness from an
// extra router-index child stream, so a given seed produces different (still
// deterministic) Monte-Carlo draws than the pre-facade driver did.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/scheme_factory.hpp"
#include "graph/families.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/stats.hpp"
#include "runtime/table.hpp"

namespace nav::routing {

struct SweepConfig {
  std::string family;                 // graph::families registry name
  std::vector<graph::NodeId> sizes;   // requested node counts
  std::vector<std::string> schemes;   // core::make_scheme specs
  TrialConfig trials;
  std::uint64_t seed = 0x5eed;
  /// Cap on oracle memory: sizes <= this use a full DistanceMatrix, larger
  /// ones a TargetDistanceCache.
  graph::NodeId dense_oracle_limit = 4096;
};

struct SweepRow {
  std::string family;
  std::string scheme;
  graph::NodeId n_requested = 0;
  graph::NodeId n_actual = 0;
  graph::EdgeId m = 0;
  graph::Dist diameter_lb = 0;     // double-sweep lower bound
  double greedy_diameter = 0.0;    // max over pairs of mean steps
  double mean_steps = 0.0;         // mean over pairs
  double ci_halfwidth = 0.0;       // CI at the maximising pair
  double seconds = 0.0;            // wall time of the cell
};

/// Runs the grid with the greedy router; rows ordered size-major then scheme.
[[nodiscard]] std::vector<SweepRow> run_sweep(const SweepConfig& config);

/// Renders rows as a paper-style table:
/// family | scheme | n | m | diamLB | greedy-diam | mean | ci | time.
[[nodiscard]] nav::Table sweep_table(const std::vector<SweepRow>& rows);

/// Per-scheme power-law fit of greedy diameter vs n (actual sizes).
struct SchemeFit {
  std::string scheme;
  nav::PowerFit fit;
};
[[nodiscard]] std::vector<SchemeFit> fit_exponents(
    const std::vector<SweepRow>& rows);

/// Renders the fits: scheme | exponent | R².
[[nodiscard]] nav::Table fit_table(const std::vector<SchemeFit>& fits);

}  // namespace nav::routing
