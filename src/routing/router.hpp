// router.hpp — the routing-policy interface behind the router registry.
//
// The paper fixes ONE routing process (greedy, §1) and varies the
// augmentation distribution. Follow-up work varies the *process* instead:
// "Know Thy Neighbor's Neighbor" (Manku–Naor–Wieder, STOC'04 — the paper's
// reference [16]) and "Near Optimal Routing for Small-World Networks with
// Augmented Local Awareness" (Zeng–Hsu–Hu) give nodes lookahead over their
// neighbours' long-range links. Router abstracts over that choice so that
// schemes × routers form a sweep grid (api::Experiment, make_router) instead
// of one hand-rolled bench binary per process.
//
// Contract:
//   * route(s, t, scheme, rng) draws every contact it needs from `rng`,
//     which is taken BY VALUE: a route consumes a private stream, never the
//     caller's. (s, t, scheme, rng state) -> result is a pure function, so
//     batch drivers stay deterministic under any parallel schedule by
//     handing trial i the child stream rng.child(i).
//   * `scheme` may be nullptr: the node has local links only.
//   * scheme->num_nodes() must match the router's graph (checked, throws).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "graph/distance_oracle.hpp"

namespace nav::routing {

using core::AugmentationScheme;
using graph::Dist;
using graph::Graph;
using graph::NodeId;

struct RouteResult {
  std::uint32_t steps = 0;            // hops from s to t
  std::uint32_t long_links_used = 0;  // how many hops were long-range
  Dist initial_distance = 0;          // dist(s, t)
  bool reached = false;               // always true for connected graphs
  /// Hop trace (s first, t last) — only filled when record_trace is set;
  /// long_flags[i] marks whether hop i -> i+1 used a long-range link.
  std::vector<NodeId> trace;
  std::vector<std::uint8_t> long_flags;
};

/// A routing process over one fixed graph + distance oracle. Implementations
/// are immutable after construction and safe for concurrent route() calls.
class Router {
 public:
  virtual ~Router() = default;

  /// Process identifier for tables, e.g. "greedy", "lookahead:1".
  [[nodiscard]] virtual std::string name() const = 0;

  /// The underlying graph this router forwards on.
  [[nodiscard]] virtual const Graph& graph() const noexcept = 0;

  /// Routes s -> t under `scheme` (nullptr: local links only), drawing all
  /// contact randomness from the private stream `rng`.
  [[nodiscard]] virtual RouteResult route(NodeId s, NodeId t,
                                          const AugmentationScheme* scheme,
                                          Rng rng,
                                          bool record_trace = false) const = 0;

  /// Routes with the target's distance vector already resolved
  /// (`target_dist` must equal *oracle.distances_to(t), size n). Batch
  /// drivers (api::RouteService) resolve once per target shard and route
  /// every pair of the shard through the same vector, bypassing the oracle
  /// entirely — results are identical to route() by construction. The base
  /// implementation ignores the hint and forwards to route(), so custom
  /// routers stay correct without overriding.
  [[nodiscard]] virtual RouteResult route_resolved(
      NodeId s, NodeId t, std::span<const Dist> target_dist,
      const AugmentationScheme* scheme, Rng rng,
      bool record_trace = false) const {
    (void)target_dist;
    return route(s, t, scheme, rng, record_trace);
  }
};

using RouterPtr = std::unique_ptr<Router>;

}  // namespace nav::routing
