// lookahead_router.hpp — greedy routing with depth-d lookahead (NoN).
//
// "Know Thy Neighbor's Neighbor" (Manku, Naor, Wieder — STOC'04, the paper's
// reference [16]): nodes also know the long-range contacts of their
// neighbours. Zeng–Hsu–Hu ("Near Optimal Routing for Small-World Networks
// with Augmented Local Awareness") generalise to deeper awareness, which is
// why depth is a first-class parameter here instead of a separate code path.
// The depth-d NoN-greedy rule at u with target t:
//   * score every neighbour w (local + u's own contact) by the best distance
//     reachable along the chain w, contact(w), contact(contact(w)), ... of
//     up to d long links: min over the chain prefix of dist(·, t);
//   * move to the best-scoring w; if w itself is not closer than u (it was
//     chosen for its chain), keep following the committed chain of long
//     links until the distance has dropped — at most d extra steps.
// Every committed move lowers the distance by >= 1 per <= 1 + d steps, so
// the route takes <= (1 + d) · dist(s,t) steps (asserted). d = 1 is exactly
// the STOC'04 protocol; the registry (make_router) maps "lookahead:0" to the
// plain greedy router.
//
// Lookahead requires *consistent* contacts (the neighbour's link must be the
// same when the message reaches it), so the API takes a contact vector —
// sample one with core::sample_all_contacts — or a memoised contact function
// (core::MemoContacts). The Router-interface route(scheme, rng) overload
// builds a MemoContacts internally from its private rng stream.
//
// This is extension experiment E10: how much of the sqrt(n)-barrier can
// extra *local knowledge* recover, compared to changing the augmentation
// distribution itself (Theorem 4)?
#pragma once

#include <functional>
#include <span>

#include "routing/router.hpp"

namespace nav::routing {

class LookaheadRouter final : public Router {
 public:
  /// `depth` >= 1 long links of awareness per candidate (1 = classic NoN).
  LookaheadRouter(const Graph& g, const graph::DistanceOracle& oracle,
                  unsigned depth = 1)
      : graph_(g), oracle_(oracle), depth_(depth), exact_(oracle.exact()) {
    NAV_REQUIRE(depth_ >= 1, "lookahead depth must be >= 1 (0 is greedy)");
  }

  /// Router interface: realises a fixed augmentation lazily via
  /// core::MemoContacts seeded from `rng` (so repeated reads of a node's
  /// link are consistent), then routes with depth-d lookahead.
  [[nodiscard]] RouteResult route(NodeId s, NodeId t,
                                  const AugmentationScheme* scheme, Rng rng,
                                  bool record_trace = false) const override;

  /// Batch entry point: same process, but dist(·, t) comes from the
  /// caller-resolved `target_dist` instead of an oracle query.
  [[nodiscard]] RouteResult route_resolved(
      NodeId s, NodeId t, std::span<const Dist> target_dist,
      const AugmentationScheme* scheme, Rng rng,
      bool record_trace = false) const override;

  /// NoN-greedy route with fixed contacts (contacts[u] may be kNoContact).
  [[nodiscard]] RouteResult route(NodeId s, NodeId t,
                                  std::span<const NodeId> contacts,
                                  bool record_trace = false) const;

  /// Same protocol over a contact *function* — typically core::MemoContacts,
  /// which realises the fixed augmentation lazily (the function must return
  /// the same value on repeated calls for a node).
  using ContactFn = std::function<NodeId(NodeId)>;
  [[nodiscard]] RouteResult route(NodeId s, NodeId t, const ContactFn& contacts,
                                  bool record_trace = false) const;

  [[nodiscard]] std::string name() const override {
    return "lookahead:" + std::to_string(depth_);
  }
  [[nodiscard]] const Graph& graph() const noexcept override { return graph_; }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }

 private:
  RouteResult route_impl(NodeId s, NodeId t, std::span<const Dist> dist,
                         const ContactFn& contacts, bool record_trace) const;

  const Graph& graph_;
  const graph::DistanceOracle& oracle_;
  unsigned depth_;
  /// Cached oracle.exact(): false swaps the strict-descent assertion for
  /// stall-tolerant termination (reached == false at a local minimum).
  const bool exact_;
};

}  // namespace nav::routing
