// lookahead_router.hpp — greedy routing with one-hop lookahead (NoN).
//
// "Know Thy Neighbor's Neighbor" (Manku, Naor, Wieder — STOC'04, the paper's
// reference [16]): nodes also know the long-range contacts of their
// neighbours. The NoN-greedy rule at u with target t:
//   * score every neighbour w (local + u's own contact) by
//     min(dist(w,t), dist(contact(w), t));
//   * move to the best-scoring w; if w itself is not closer than u (it was
//     chosen for its contact), immediately follow w's long link — a
//     committed two-step move.
// Every committed move lowers the distance by >= 1 per <= 2 steps, so the
// route takes <= 2·dist(s,t) steps (asserted).
//
// Lookahead requires *eager* contacts (the neighbour's link must be the same
// when the message reaches it), so the API takes a contact vector — sample
// one with core::sample_all_contacts.
//
// This is extension experiment E10: how much of the sqrt(n)-barrier can
// extra *local knowledge* recover, compared to changing the augmentation
// distribution itself (Theorem 4)?
#pragma once

#include <functional>
#include <span>

#include "routing/greedy_router.hpp"

namespace nav::routing {

class LookaheadRouter {
 public:
  LookaheadRouter(const Graph& g, const graph::DistanceOracle& oracle)
      : graph_(g), oracle_(oracle) {}

  /// NoN-greedy route with fixed contacts (contacts[u] may be kNoContact).
  [[nodiscard]] RouteResult route(NodeId s, NodeId t,
                                  std::span<const NodeId> contacts,
                                  bool record_trace = false) const;

  /// Same protocol over a contact *function* — typically core::MemoContacts,
  /// which realises the fixed augmentation lazily (the function must return
  /// the same value on repeated calls for a node).
  using ContactFn = std::function<NodeId(NodeId)>;
  [[nodiscard]] RouteResult route(NodeId s, NodeId t, const ContactFn& contacts,
                                  bool record_trace = false) const;

 private:
  const Graph& graph_;
  const graph::DistanceOracle& oracle_;
};

}  // namespace nav::routing
