#include "routing/exact_analysis.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/thread_pool.hpp"

namespace nav::routing {

using graph::Dist;
using graph::NodeId;

std::vector<double> exact_expected_steps(const graph::Graph& g,
                                         const core::AugmentationScheme* scheme,
                                         NodeId target) {
  NAV_REQUIRE(target < g.num_nodes(), "target out of range");
  const auto dist = graph::bfs_distances(g, target);
  for (const auto d : dist) {
    NAV_REQUIRE(d != graph::kInfDist, "exact analysis requires connectivity");
  }

  // Process nodes by increasing distance to the target.
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });

  std::vector<double> expected(g.num_nodes(), 0.0);
  for (const NodeId u : order) {
    if (u == target) continue;
    // Deterministic best local neighbour — same tie-break as GreedyRouter
    // (sorted adjacency, first minimum).
    NodeId best_local = graph::kNoNode;
    Dist best_dist = graph::kInfDist;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] < best_dist) {
        best_dist = dist[v];
        best_local = v;
      }
    }
    NAV_ASSERT(best_local != graph::kNoNode && best_dist < dist[u]);

    if (scheme == nullptr) {
      expected[u] = 1.0 + expected[best_local];
      continue;
    }
    const auto row = scheme->probability_row(u);
    NAV_ASSERT(row.size() == g.num_nodes());
    double total_mass = 0.0;
    double value = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (row[v] <= 0.0) continue;
      total_mass += row[v];
      // The long link is taken only when strictly better than best_local;
      // both successors are strictly closer to t, so their T is final.
      const NodeId next = dist[v] < best_dist ? v : best_local;
      value += row[v] * (1.0 + expected[next]);
    }
    NAV_ASSERT(total_mass <= 1.0 + 1e-6);
    const double residual = std::max(0.0, 1.0 - total_mass);
    value += residual * (1.0 + expected[best_local]);
    expected[u] = value;
  }
  return expected;
}

double exact_pair_expectation(const graph::Graph& g,
                              const core::AugmentationScheme* scheme,
                              NodeId source, NodeId target) {
  NAV_REQUIRE(source < g.num_nodes(), "source out of range");
  return exact_expected_steps(g, scheme, target)[source];
}

ExactGreedyDiameter exact_greedy_diameter(const graph::Graph& g,
                                          const core::AugmentationScheme* scheme) {
  NAV_REQUIRE(g.num_nodes() >= 2, "graph too small");
  const NodeId n = g.num_nodes();
  std::vector<double> per_target_max(n, 0.0);
  std::vector<NodeId> per_target_argmax(n, 0);
  nav::parallel_for(0, n, [&](std::size_t t) {
    const auto expected =
        exact_expected_steps(g, scheme, static_cast<NodeId>(t));
    double best = 0.0;
    NodeId arg = 0;
    for (NodeId s = 0; s < n; ++s) {
      if (expected[s] > best) {
        best = expected[s];
        arg = s;
      }
    }
    per_target_max[t] = best;
    per_target_argmax[t] = arg;
  });
  ExactGreedyDiameter out;
  for (NodeId t = 0; t < n; ++t) {
    if (per_target_max[t] > out.value) {
      out.value = per_target_max[t];
      out.argmax_source = per_target_argmax[t];
      out.argmax_target = t;
    }
  }
  return out;
}

}  // namespace nav::routing
