// greedy_router.hpp — the paper's greedy routing process (§1).
//
// At the current node u with destination t, the message is forwarded to the
// neighbour of u — among u's local neighbours *plus u's own long-range
// contact* — that is closest to t in the *underlying* graph G. Every node
// knows the distances of G but only its own long-range link.
//
// Termination: u always has a local neighbour on a shortest path to t, at
// distance dist(u,t) - 1, so the chosen next hop strictly decreases the
// distance. Hence the route takes at most dist(s,t) <= diam(G) steps, visits
// no node twice (which also makes lazy contact sampling exact — see
// core/scheme.hpp), and the router asserts the strict decrease.
//
// Tie-breaking: the paper allows any choice; we prefer the local neighbour
// with the smallest id, and take the long link only when *strictly* better
// than every local option (deterministic given the contact draw).
#pragma once

#include <span>

#include "routing/router.hpp"

namespace nav::routing {

class GreedyRouter final : public Router {
 public:
  /// The oracle provides dist_G(·, t); both must outlive the router. The
  /// oracle's exact() flag is read once here: approximate fields (landmark
  /// bound) switch the strict-descent assertion for stall-tolerant
  /// termination (a stalled route returns with reached == false).
  GreedyRouter(const Graph& g, const graph::DistanceOracle& oracle)
      : graph_(g), oracle_(oracle), exact_(oracle.exact()) {}

  /// Routes s -> t, sampling each visited node's contact lazily from
  /// `scheme` (nullptr: no long-range links — pure shortest-path walk).
  /// `rng` is by value per the Router contract: the route consumes a
  /// private stream.
  [[nodiscard]] RouteResult route(NodeId s, NodeId t,
                                  const AugmentationScheme* scheme, Rng rng,
                                  bool record_trace = false) const override;

  /// Batch entry point: same process, but dist(·, t) comes from the
  /// caller-resolved `target_dist` instead of an oracle query.
  [[nodiscard]] RouteResult route_resolved(
      NodeId s, NodeId t, std::span<const Dist> target_dist,
      const AugmentationScheme* scheme, Rng rng,
      bool record_trace = false) const override;

  /// Routes with a fixed (eagerly sampled) contact vector: contacts[u] is
  /// u's long-range contact or core::kNoContact.
  [[nodiscard]] RouteResult route_with_contacts(
      NodeId s, NodeId t, std::span<const NodeId> contacts,
      bool record_trace = false) const;

  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] const Graph& graph() const noexcept override { return graph_; }

 private:
  template <typename ContactFn>
  RouteResult route_impl(NodeId s, NodeId t, std::span<const Dist> dist,
                         ContactFn&& contact_of, bool record_trace) const;

  const Graph& graph_;
  const graph::DistanceOracle& oracle_;
  const bool exact_;
};

}  // namespace nav::routing
