#include "resilience/fault_spec.hpp"

#include "runtime/parse.hpp"
#include "runtime/rng.hpp"

namespace nav::resilience {

namespace {

// Domain-separation salts for the three draw families. Each draw hashes
// (seed ^ salt, target, attempt) through SplitMix64 — the same finalizer the
// Rng seeds with — and converts the top 53 bits to a uniform double.
constexpr std::uint64_t kStallSalt = 0x57a11'0000'0001ULL;
constexpr std::uint64_t kFailSalt = 0xfa11'0000'0002ULL;
constexpr std::uint64_t kSlowSalt = 0x510e'0000'0003ULL;

double uniform_draw(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                    std::uint64_t b) noexcept {
  std::uint64_t state = seed ^ salt;
  (void)splitmix64_next(state);  // decorrelate adjacent seeds
  state ^= a * 0x9e3779b97f4a7c15ULL;
  (void)splitmix64_next(state);
  state ^= b * 0xc2b2ae3d27d4eb4fULL;
  const std::uint64_t h = splitmix64_next(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& token, const std::string& spec) {
  const double p = parse_spec_number<double>(token, spec);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault probability must be in [0, 1]: " +
                                spec);
  }
  return p;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::vector<std::string>& tokens,
                           const std::string& full_spec) {
  FaultSpec out;
  bool saw_stall = false, saw_fail = false, saw_slow = false, saw_seed = false;
  bool any_clause = false;
  std::size_t i = 0;
  const auto take = [&](const char* what) -> const std::string& {
    if (i >= tokens.size()) {
      throw std::invalid_argument(std::string("fault clause needs ") + what +
                                  ": " + full_spec);
    }
    return tokens[i++];
  };
  while (i < tokens.size()) {
    const std::string head = tokens[i++];
    if (head == "stall" && !saw_stall) {
      out.stall_p = parse_probability(take("a probability"), full_spec);
      saw_stall = any_clause = true;
    } else if (head == "fail" && !saw_fail) {
      out.fail_p = parse_probability(take("a probability"), full_spec);
      saw_fail = any_clause = true;
    } else if (head == "slow" && !saw_slow) {
      out.slow_p = parse_probability(take("a probability"), full_spec);
      out.slow_us = parse_spec_number<double>(take("microseconds"), full_spec);
      if (out.slow_us < 0.0) {
        throw std::invalid_argument("slow latency must be >= 0 us: " +
                                    full_spec);
      }
      saw_slow = any_clause = true;
    } else if (head == "seed" && !saw_seed) {
      out.seed = parse_spec_number<std::uint64_t>(take("a seed"), full_spec);
      saw_seed = true;
    } else {
      throw std::invalid_argument(
          "bad or repeated fault clause '" + head +
          "' (stall:<p> | fail:<p> | slow:<p>:<us> | seed:<n>): " + full_spec);
    }
  }
  if (!any_clause) {
    throw std::invalid_argument(
        "fault spec needs at least one of stall/fail/slow: " + full_spec);
  }
  out.spec = full_spec;
  return out;
}

bool FaultSpec::is_fault_head(const std::string& token) {
  return token == "stall" || token == "fail" || token == "slow" ||
         token == "seed";
}

bool FaultSpec::stalled(graph::NodeId target) const noexcept {
  if (stall_p <= 0.0) return false;
  return uniform_draw(seed, kStallSalt, target, 0) < stall_p;
}

bool FaultSpec::fails(graph::NodeId target,
                      std::uint64_t attempt) const noexcept {
  if (fail_p <= 0.0) return false;
  return uniform_draw(seed, kFailSalt, target, attempt) < fail_p;
}

bool FaultSpec::slow(graph::NodeId target,
                     std::uint64_t attempt) const noexcept {
  if (slow_p <= 0.0) return false;
  return uniform_draw(seed, kSlowSalt, target, attempt) < slow_p;
}

graph::Dist FaultSpec::stall_transform(graph::Dist d,
                                       graph::NodeId target) const noexcept {
  if (d == graph::kInfDist || d <= stall_exact_radius) return d;
  if (d >= graph::kInfDist - 1) return d;  // never widen into the sentinel
  // Parity jitter keyed on (seed, target, d): the same true distance always
  // widens the same way toward the same target, so the perturbed field is a
  // pure function of the exact field — prefetched rows and single queries
  // agree entry for entry.
  const double u = uniform_draw(seed, kStallSalt ^ 0xd157, target, d);
  return d + (u < 0.5 ? 0u : 1u);
}

}  // namespace nav::resilience
