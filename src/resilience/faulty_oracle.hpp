// faulty_oracle.hpp — fault-injecting decorator over any DistanceOracle.
//
// FaultyOracle wraps a base oracle and applies a FaultSpec schedule to every
// query, deterministically (seeded hash of target + per-target attempt
// counter — never wall clock or thread identity):
//
//   * stall faults make the decorator APPROXIMATE: exact() returns false,
//     and rows toward a stalled target are widened copies of the base row
//     (FaultSpec::stall_transform) — valid upper bounds that greedy routing
//     must treat stall-tolerantly, exactly like a landmark row.
//   * fail faults throw TransientOracleError. The batch contract makes
//     retries converge: prefetch_into fills `out` for every NON-failing
//     position first and the thrown error lists only the failed targets, so
//     a caller retries the failed subset and keeps the rest (RouteService's
//     bounded-retry loop relies on this partial-success contract).
//   * slow faults advance a VirtualClock (the process-global one by
//     default) instead of sleeping — latency that deadline budgets and the
//     kAdaptive SLO model observe at zero wall cost.
//
// Reachable from every surface as make_oracle("faulty:<base>:<faults>"),
// e.g. "faulty:cache:64:fail:0.05:stall:0.1:seed:7".
#pragma once

/// \file
/// \brief FaultyOracle: deterministic fault-injecting DistanceOracle
/// decorator (stall / fail / slow).

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/distance_oracle.hpp"
#include "resilience/fault_spec.hpp"
#include "resilience/virtual_clock.hpp"

namespace nav::resilience {

/// Fault-injecting decorator; see the header comment. Thread-safe like the
/// oracles it wraps (the attempt-counter table is mutex-guarded), but fault
/// DRAWS stay deterministic only when the evaluation order of attempts is —
/// which the RouteService prefetch path guarantees (one service thread
/// evaluates waves sequentially, faults decided before any fan-out).
class FaultyOracle final : public graph::DistanceOracle {
 public:
  /// Owning wrap (the make_oracle path): the decorator keeps the base alive.
  FaultyOracle(std::unique_ptr<graph::DistanceOracle> base, FaultSpec spec,
               VirtualClock* clock = nullptr);

  /// Non-owning wrap (route_server's --faults over a DynamicOracle): `base`
  /// must outlive the decorator.
  FaultyOracle(const graph::DistanceOracle& base, FaultSpec spec,
               VirtualClock* clock = nullptr);

  /// Exact iff the base is exact and no stall faults are configured — any
  /// stall probability makes every row potentially bound-only, so routers
  /// must latch the stall-tolerant posture up front.
  [[nodiscard]] bool exact() const noexcept override {
    return spec_.stall_p <= 0.0 && base_->exact();
  }

  /// Single-entry query; counts one attempt (may throw, may inject
  /// latency), and applies the stall transform on stalled targets.
  [[nodiscard]] graph::Dist distance(graph::NodeId u,
                                     graph::NodeId target) const override;

  /// Full-row query; counts one attempt. Stalled targets return a widened
  /// heap copy of the base row, freshly pinned per query (the copy is the
  /// price of the fault — the base row itself stays cached in the base).
  [[nodiscard]] graph::DistVecPtr distances_to(
      graph::NodeId target) const override;

  /// Batch prefetch with the partial-success contract: fault draws are
  /// evaluated per DISTINCT target in input order on the calling thread;
  /// non-failing targets are delegated to the base prefetch and their rows
  /// land in `out` (input order, duplicates sharing); THEN, if any target
  /// drew a fail fault, TransientOracleError is thrown listing exactly the
  /// failed targets — their `out` slots stay null. Retrying just the failed
  /// subset therefore makes progress every round.
  void prefetch_into(std::span<const graph::NodeId> targets,
                     std::vector<graph::DistVecPtr>& out) const override;

  /// The schedule in force.
  [[nodiscard]] const FaultSpec& fault_spec() const noexcept { return spec_; }

  /// The wrapped oracle.
  [[nodiscard]] const graph::DistanceOracle& base() const noexcept {
    return *base_;
  }

  /// Fail faults thrown so far (attempt-level, cumulative).
  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_failures_.load(std::memory_order_relaxed);
  }

  /// Stalled (widened) rows materialised so far.
  [[nodiscard]] std::uint64_t stalled_rows() const noexcept {
    return stalled_rows_.load(std::memory_order_relaxed);
  }

  /// Virtual microseconds injected by slow faults so far.
  [[nodiscard]] std::uint64_t injected_slow_micros() const noexcept {
    return injected_slow_micros_.load(std::memory_order_relaxed);
  }

 private:
  /// One fault evaluation for `target`: bumps its attempt counter, injects
  /// slow latency, returns true when the attempt drew a fail fault.
  [[nodiscard]] bool evaluate_attempt(graph::NodeId target) const;

  /// Widened copy of the base row toward a stalled target, heap-pinned.
  [[nodiscard]] graph::DistVecPtr widen_row(graph::NodeId target,
                                            const graph::DistView& row) const;

  const graph::DistanceOracle* base_;
  std::unique_ptr<graph::DistanceOracle> owned_base_;
  FaultSpec spec_;
  VirtualClock* clock_;

  mutable std::mutex mutex_;  // guards attempts_
  mutable std::unordered_map<graph::NodeId, std::uint64_t> attempts_;

  mutable std::atomic<std::uint64_t> injected_failures_{0};
  mutable std::atomic<std::uint64_t> stalled_rows_{0};
  mutable std::atomic<std::uint64_t> injected_slow_micros_{0};
};

}  // namespace nav::resilience
