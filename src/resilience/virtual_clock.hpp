// virtual_clock.hpp — deterministic virtual time for fault injection.
//
// Resilience behaviour must be testable bit for bit: a `slow:<p>:<us>` fault
// or a retry backoff cannot call std::this_thread::sleep_for and stay
// deterministic (or fast). Instead, injected latency ADVANCES a virtual
// clock — an atomic microsecond accumulator — and the consumers that care
// about elapsed "time" (RouteService deadline budgets, virtual-time Shed
// evaluation, the kAdaptive sojourn model) read deltas of this clock instead
// of the wall clock. Integer microseconds, not floating seconds, so
// concurrent advances from a prefetch wave accumulate associatively: the
// total is independent of thread interleaving.
#pragma once

/// \file
/// \brief VirtualClock: atomic virtual-time accumulator for deterministic
/// fault-injection latency.

#include <atomic>
#include <cmath>
#include <cstdint>

namespace nav::resilience {

/// Monotone virtual-time accumulator (microsecond granularity). Fault
/// injectors advance it in place of sleeping; deadline/SLO consumers read
/// deltas. Thread-safe; integer accumulation keeps concurrent advances
/// order-independent.
class VirtualClock {
 public:
  /// Adds `us` virtual microseconds.
  void advance_micros(std::uint64_t us) noexcept {
    micros_.fetch_add(us, std::memory_order_relaxed);
  }

  /// Adds `seconds` of virtual time, rounded to whole microseconds (so the
  /// accumulated total stays exact under any advance interleaving).
  void advance_seconds(double seconds) noexcept {
    if (seconds <= 0.0) return;
    advance_micros(static_cast<std::uint64_t>(std::llround(seconds * 1e6)));
  }

  /// Total virtual microseconds advanced so far.
  [[nodiscard]] std::uint64_t micros() const noexcept {
    return micros_.load(std::memory_order_relaxed);
  }

  /// Total virtual seconds advanced so far.
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(micros()) * 1e-6;
  }

 private:
  std::atomic<std::uint64_t> micros_{0};
};

/// The process-wide virtual clock: FaultyOracle instances advance it by
/// default and RouteService measures per-batch injected latency as a delta
/// across batch execution, so both sides agree without explicit plumbing.
[[nodiscard]] VirtualClock& global_virtual_clock();

}  // namespace nav::resilience
