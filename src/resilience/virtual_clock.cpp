#include "resilience/virtual_clock.hpp"

namespace nav::resilience {

VirtualClock& global_virtual_clock() {
  // Leaked singleton (never destroyed): oracles and services may consult the
  // clock from static-destruction-ordered contexts, same idiom as
  // obs::default_registry().
  static VirtualClock* clock = new VirtualClock();
  return *clock;
}

}  // namespace nav::resilience
