#include "resilience/faulty_oracle.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/assert.hpp"

namespace nav::resilience {

FaultyOracle::FaultyOracle(std::unique_ptr<graph::DistanceOracle> base,
                           FaultSpec spec, VirtualClock* clock)
    : base_(base.get()),
      owned_base_(std::move(base)),
      spec_(std::move(spec)),
      clock_(clock != nullptr ? clock : &global_virtual_clock()) {
  NAV_REQUIRE(base_ != nullptr, "FaultyOracle needs a base oracle");
}

FaultyOracle::FaultyOracle(const graph::DistanceOracle& base, FaultSpec spec,
                           VirtualClock* clock)
    : base_(&base),
      spec_(std::move(spec)),
      clock_(clock != nullptr ? clock : &global_virtual_clock()) {}

bool FaultyOracle::evaluate_attempt(graph::NodeId target) const {
  std::uint64_t attempt;
  {
    std::lock_guard lock(mutex_);
    attempt = attempts_[target]++;
  }
  if (spec_.slow(target, attempt)) {
    const auto us =
        static_cast<std::uint64_t>(std::llround(spec_.slow_us));
    clock_->advance_micros(us);
    injected_slow_micros_.fetch_add(us, std::memory_order_relaxed);
  }
  if (spec_.fails(target, attempt)) {
    injected_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

graph::DistVecPtr FaultyOracle::widen_row(graph::NodeId target,
                                          const graph::DistView& row) const {
  const std::size_t n = row.size();
  std::shared_ptr<graph::Dist[]> buffer(new graph::Dist[n]);
  for (std::size_t i = 0; i < n; ++i) {
    buffer[i] = spec_.stall_transform(row[i], target);
  }
  stalled_rows_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const graph::Dist> alias(buffer, buffer.get());
  return {std::move(alias), n};
}

graph::Dist FaultyOracle::distance(graph::NodeId u,
                                   graph::NodeId target) const {
  if (evaluate_attempt(target)) {
    throw TransientOracleError({target});
  }
  const graph::Dist d = base_->distance(u, target);
  return spec_.stalled(target) ? spec_.stall_transform(d, target) : d;
}

graph::DistVecPtr FaultyOracle::distances_to(graph::NodeId target) const {
  if (evaluate_attempt(target)) {
    throw TransientOracleError({target});
  }
  graph::DistVecPtr row = base_->distances_to(target);
  if (!spec_.stalled(target)) return row;
  return widen_row(target, *row);
}

void FaultyOracle::prefetch_into(std::span<const graph::NodeId> targets,
                                 std::vector<graph::DistVecPtr>& out) const {
  // Fault draws per DISTINCT target, in first-appearance order, on this
  // thread — the decision sequence is a pure function of the input list and
  // the attempt counters, independent of how the base prefetch parallelises.
  std::vector<graph::NodeId> ok;
  std::vector<graph::NodeId> failed;
  ok.reserve(targets.size());
  {
    std::vector<graph::NodeId> seen;
    seen.reserve(targets.size());
    for (const graph::NodeId t : targets) {
      if (std::find(seen.begin(), seen.end(), t) != seen.end()) continue;
      seen.push_back(t);
      if (evaluate_attempt(t)) {
        failed.push_back(t);
      } else {
        ok.push_back(t);
      }
    }
  }
  if (failed.empty() && ok.size() == targets.size()) {
    // Common case (no faults, no duplicates): delegate in place, then widen
    // any stalled rows.
    base_->prefetch_into(targets, out);
    if (spec_.stall_p > 0.0) {
      for (std::size_t i = 0; i < targets.size(); ++i) {
        if (spec_.stalled(targets[i])) out[i] = widen_row(targets[i], *out[i]);
      }
    }
    return;
  }
  // Partial success: fetch the surviving subset, scatter rows to their input
  // positions (duplicates share), leave failed positions null, then throw.
  std::vector<graph::DistVecPtr> fetched;
  base_->prefetch_into(ok, fetched);
  if (spec_.stall_p > 0.0) {
    for (std::size_t i = 0; i < ok.size(); ++i) {
      if (spec_.stalled(ok[i])) fetched[i] = widen_row(ok[i], *fetched[i]);
    }
  }
  out.clear();
  out.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto it = std::find(ok.begin(), ok.end(), targets[i]);
    if (it != ok.end()) {
      out[i] = fetched[static_cast<std::size_t>(it - ok.begin())];
    }
  }
  if (!failed.empty()) {
    throw TransientOracleError(std::move(failed));
  }
}

}  // namespace nav::resilience
