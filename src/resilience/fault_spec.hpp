// fault_spec.hpp — seeded, deterministic fault schedules for oracle chaos.
//
// A FaultSpec describes WHICH queries misbehave and HOW, as a pure function
// of (seed, target, attempt) — never of wall clock, thread identity, or call
// interleaving. Three fault families compose in one spec:
//
//   stall:<p>      a fixed p-fraction of TARGETS (chosen by seeded hash)
//                  answers with bound-only rows: distances beyond a small
//                  exact ball are widened by a deterministic +0/+1 jitter,
//                  still valid upper bounds but no longer a strictly
//                  descending field — greedy routes can stall, which is
//                  exactly the exact()=false machinery under test.
//   fail:<p>       each ATTEMPT at a target independently throws
//                  TransientOracleError with probability p; the attempt
//                  counter advances per evaluation, so bounded retries
//                  converge deterministically (a target that failed attempt
//                  k draws fresh at attempt k+1).
//   slow:<p>:<us>  each attempt independently injects <us> microseconds of
//                  VIRTUAL latency (resilience/virtual_clock.hpp) with
//                  probability p — deadline budgets and the kAdaptive SLO
//                  model see the latency, the wall clock never does.
//
// Spec text is a ':'-separated clause sequence, e.g. "fail:0.05:stall:0.1"
// or "slow:0.2:500:seed:7"; `seed:<n>` re-keys the whole schedule. The
// grammar rides inside make_oracle's "faulty:<base-spec>:<fault-spec>".
#pragma once

/// \file
/// \brief FaultSpec: deterministic seeded fault schedule (stall / fail /
/// slow) and TransientOracleError.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nav::resilience {

/// Thrown by a fault-injecting oracle when an attempt draws a `fail` fault.
/// Carries the targets whose attempt failed so callers can retry exactly
/// that subset; for batch prefetches the thrower's contract is that every
/// OTHER requested position was filled before the throw (partial success —
/// see FaultyOracle::prefetch_into).
class TransientOracleError : public std::runtime_error {
 public:
  /// `targets` = the failed subset of the attempted targets.
  explicit TransientOracleError(std::vector<graph::NodeId> targets)
      : std::runtime_error("transient oracle fault on " +
                           std::to_string(targets.size()) + " target(s)"),
        targets_(std::move(targets)) {}

  /// The targets whose attempt drew a fail fault (input order).
  [[nodiscard]] const std::vector<graph::NodeId>& targets() const noexcept {
    return targets_;
  }

 private:
  std::vector<graph::NodeId> targets_;
};

/// Seeded deterministic fault schedule; see the header comment for the
/// clause grammar. Value type: copies share the schedule.
struct FaultSpec {
  double stall_p = 0.0;   ///< fraction of targets with bound-only rows
  double fail_p = 0.0;    ///< per-attempt TransientOracleError probability
  double slow_p = 0.0;    ///< per-attempt virtual-latency probability
  double slow_us = 0.0;   ///< injected virtual microseconds per slow draw
  /// Distances within this radius of a stalled target stay exact, so routes
  /// that get close still terminate (mirrors the landmark exact ball).
  graph::Dist stall_exact_radius = 2;
  std::uint64_t seed = 0x7a017;  ///< keys every draw; `seed:<n>` overrides
  std::string spec;              ///< the text this schedule was parsed from

  /// Parses a clause sequence ("fail:0.05:stall:0.1:seed:7"). `tokens` are
  /// the ':'-split clauses; `full_spec` feeds error messages. Throws
  /// std::invalid_argument on unknown clauses, repeated clauses, or
  /// probabilities outside [0, 1].
  [[nodiscard]] static FaultSpec parse(
      const std::vector<std::string>& tokens, const std::string& full_spec);

  /// True for tokens that can open a fault clause ("stall" | "fail" |
  /// "slow" | "seed") — how make_oracle finds where the base oracle spec
  /// ends inside "faulty:<base-spec>:<fault-spec>".
  [[nodiscard]] static bool is_fault_head(const std::string& token);

  /// Any fault family active?
  [[nodiscard]] bool any() const noexcept {
    return stall_p > 0.0 || fail_p > 0.0 || slow_p > 0.0;
  }

  /// Target-level stall membership (attempt-independent: a stalled target is
  /// stalled for the run's lifetime, like a degraded replica).
  [[nodiscard]] bool stalled(graph::NodeId target) const noexcept;

  /// Attempt-level fail draw.
  [[nodiscard]] bool fails(graph::NodeId target,
                           std::uint64_t attempt) const noexcept;

  /// Attempt-level slow draw.
  [[nodiscard]] bool slow(graph::NodeId target,
                          std::uint64_t attempt) const noexcept;

  /// The stall transform for one row entry: distances beyond the exact
  /// radius widen by a deterministic +0/+1 jitter keyed on (seed, target,
  /// d). Still an upper bound (true distance d <= returned value <= d + 1)
  /// but no longer strictly descending along shortest paths — the stall
  /// surface greedy routing must tolerate. Infinity passes through.
  [[nodiscard]] graph::Dist stall_transform(graph::Dist d,
                                            graph::NodeId target)
      const noexcept;
};

}  // namespace nav::resilience
