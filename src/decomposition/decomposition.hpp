// decomposition.hpp — path- and tree-decompositions (Robertson–Seymour).
//
// A tree-decomposition of G is a tree T plus a bag X_i ⊆ V(G) per tree node
// such that (1) every vertex is in some bag, (2) every edge has both ends in
// some bag, (3) the bags containing any fixed vertex induce a subtree of T.
// A path-decomposition restricts T to a path; bags are then simply ordered.
//
// The paper's Theorem 2 labels nodes by the bag interval they occupy in a
// path-decomposition, so PathDecomposition also exposes the per-node index
// interval I_u (condition (3) makes it contiguous).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace nav::decomp {

using graph::Graph;
using graph::NodeId;

/// A bag: sorted, duplicate-free vertex set.
using Bag = std::vector<NodeId>;

/// Normalises a vertex set into bag form (sorts, dedups).
[[nodiscard]] Bag make_bag(std::vector<NodeId> vertices);

class PathDecomposition {
 public:
  PathDecomposition() = default;
  /// Bags in path order. Each is normalised with make_bag.
  explicit PathDecomposition(std::vector<Bag> bags);

  [[nodiscard]] std::size_t num_bags() const noexcept { return bags_.size(); }
  [[nodiscard]] const Bag& bag(std::size_t i) const {
    NAV_ASSERT(i < bags_.size());
    return bags_[i];
  }
  [[nodiscard]] const std::vector<Bag>& bags() const noexcept { return bags_; }

  /// Checks the three decomposition conditions against `g`.
  /// On failure *why (if non-null) receives a human-readable reason.
  [[nodiscard]] bool is_valid(const Graph& g, std::string* why = nullptr) const;

  /// Per-node bag-index interval [first, last] (inclusive, 0-based).
  /// Only meaningful for valid decompositions (contiguity). Nodes absent from
  /// all bags get {1, 0} (empty interval) — is_valid rejects that case.
  struct IndexInterval {
    std::size_t first = 1;
    std::size_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first > last; }
  };
  [[nodiscard]] std::vector<IndexInterval> node_intervals(NodeId n) const;

  /// Removes bags that are subsets of an adjacent bag (keeps validity, never
  /// increases any bag measure). Result has at most max(1, n-1) bags for a
  /// connected n-node graph. Returns the number of bags removed.
  std::size_t reduce();

 private:
  std::vector<Bag> bags_;
};

class TreeDecomposition {
 public:
  TreeDecomposition() = default;
  /// `tree_edges` connect bag indices; they must form a tree over the bags.
  TreeDecomposition(std::vector<Bag> bags,
                    std::vector<std::pair<std::size_t, std::size_t>> tree_edges);

  [[nodiscard]] std::size_t num_bags() const noexcept { return bags_.size(); }
  [[nodiscard]] const Bag& bag(std::size_t i) const {
    NAV_ASSERT(i < bags_.size());
    return bags_[i];
  }
  [[nodiscard]] const std::vector<Bag>& bags() const noexcept { return bags_; }
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  tree_edges() const noexcept {
    return edges_;
  }

  [[nodiscard]] bool is_valid(const Graph& g, std::string* why = nullptr) const;

 private:
  std::vector<Bag> bags_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

/// Any path decomposition is a tree decomposition (path-shaped tree).
[[nodiscard]] TreeDecomposition to_tree_decomposition(const PathDecomposition& pd);

}  // namespace nav::decomp
