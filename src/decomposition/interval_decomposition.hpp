// interval_decomposition.hpp — clique-path decomposition of interval graphs.
//
// Sweep the interval model's event points left to right; the bag at event x
// is the set of intervals stabbed by x. Each bag is a clique (all intervals
// share the point x), so length(X) <= 1 and pathshape(G) <= 1 — the witness
// behind Corollary 1's O(log² n) bound for interval graphs.
//
// Validity: an interval [lo, hi] is stabbed by exactly the event points in
// [lo, hi] — a contiguous run; two intersecting intervals share the event
// point max(lo_u, lo_v).
#pragma once

#include "decomposition/decomposition.hpp"
#include "graph/interval_model.hpp"

namespace nav::decomp {

/// Bags in sweep order, reduced (no bag subset of a neighbour).
[[nodiscard]] PathDecomposition interval_decomposition(
    const graph::IntervalModel& model);

}  // namespace nav::decomp
