#include "decomposition/permutation_decomposition.hpp"

namespace nav::decomp {

PathDecomposition permutation_decomposition(const graph::PermutationModel& model) {
  const NodeId n = model.num_nodes();
  if (n == 1) return PathDecomposition(std::vector<Bag>{Bag{0}});
  std::vector<Bag> bags;
  bags.reserve(n - 1);
  // Why this is valid:
  //  * Vertex u with π(u) != u crosses exactly the cuts in
  //    (min(u, π(u)), max(u, π(u))] — a contiguous run of bags; a fixed point
  //    is inserted into the single bag min(u+1, n-1).
  //  * Edge (u, v) means the segments cross, so their position/value spans
  //    overlap, and any cut in the overlap contains both.
  //  * Length <= 2: left-crosser w (w < c <= π(w)) and right-crosser w'
  //    (π(w') < c <= w') satisfy w < c <= w' and π(w) >= c > π(w'), i.e. an
  //    inversion — always adjacent. Same-side crossers both neighbour any
  //    opposite-side crosser; sides are equinumerous (the prefix value
  //    multiset must rebalance), so a non-trivial bag has both sides.
  for (NodeId c = 1; c < n; ++c) {
    bags.push_back(model.cut_set(c));
  }
  for (NodeId u = 0; u < n; ++u) {
    if (model.pi(u) == u) {
      const NodeId bag_index = std::min<NodeId>(u, n - 2);  // bag c = index+1
      bags[bag_index].push_back(u);
    }
  }
  PathDecomposition pd(std::move(bags));
  pd.reduce();
  return pd;
}

}  // namespace nav::decomp
