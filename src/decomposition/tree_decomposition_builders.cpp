#include "decomposition/tree_decomposition_builders.hpp"

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"

namespace nav::decomp {

TreeDecomposition tree_edge_decomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  NAV_REQUIRE(g.num_edges() == static_cast<graph::EdgeId>(n) - 1 &&
                  graph::is_connected(g),
              "tree_edge_decomposition requires a tree");
  if (n == 1) return TreeDecomposition({{0}}, {});

  // BFS parents from node 0; bag index of node v (v != root) is v's slot in
  // discovery order.
  std::vector<NodeId> parent(n, graph::kNoNode);
  std::vector<NodeId> order;  // non-root nodes in discovery order
  std::vector<std::size_t> bag_of(n, 0);
  {
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<NodeId> queue{0};
    seen[0] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = 1;
          parent[v] = u;
          bag_of[v] = order.size();
          order.push_back(v);
          queue.push_back(v);
        }
      }
    }
  }

  std::vector<Bag> bags;
  bags.reserve(order.size());
  for (const NodeId v : order) bags.push_back({v, parent[v]});

  // Bag(v) attaches to bag(parent(v)); bags of the root's children chain to
  // the root's first child's bag, keeping the root's bags connected.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t first_root_child_bag = static_cast<std::size_t>(-1);
  for (const NodeId v : order) {
    if (parent[v] == 0) {
      if (first_root_child_bag == static_cast<std::size_t>(-1)) {
        first_root_child_bag = bag_of[v];
      } else {
        edges.emplace_back(bag_of[v], first_root_child_bag);
      }
    } else {
      edges.emplace_back(bag_of[v], bag_of[parent[v]]);
    }
  }
  return TreeDecomposition(std::move(bags), std::move(edges));
}

TreeDecomposition trivial_tree_decomposition(const Graph& g) {
  Bag all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  return TreeDecomposition({std::move(all)}, {});
}

}  // namespace nav::decomp
