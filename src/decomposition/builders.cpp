#include "decomposition/builders.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/diameter.hpp"

namespace nav::decomp {

PathDecomposition trivial_decomposition(const Graph& g) {
  Bag all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  return PathDecomposition({std::move(all)});
}

PathDecomposition path_graph_decomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  if (n == 1) return PathDecomposition(std::vector<Bag>{Bag{0}});
  NAV_REQUIRE(g.num_edges() == n - 1, "not a path graph (edge count)");
  // Find an endpoint (degree 1) and walk.
  NodeId start = graph::kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    NAV_REQUIRE(g.degree(v) <= 2, "not a path graph (degree > 2)");
    if (g.degree(v) == 1 && start == graph::kNoNode) start = v;
  }
  NAV_REQUIRE(start != graph::kNoNode, "not a path graph (no endpoint)");
  std::vector<Bag> bags;
  bags.reserve(n - 1);
  NodeId prev = graph::kNoNode;
  NodeId cur = start;
  for (NodeId step = 0; step + 1 < n; ++step) {
    NodeId next = graph::kNoNode;
    for (const NodeId w : g.neighbors(cur)) {
      if (w != prev) {
        next = w;
        break;
      }
    }
    NAV_REQUIRE(next != graph::kNoNode, "not a path graph (walk stuck)");
    bags.push_back({cur, next});
    prev = cur;
    cur = next;
  }
  PathDecomposition pd(std::move(bags));
  return pd;
}

PathDecomposition bfs_layer_decomposition(const Graph& g, NodeId root) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  NAV_REQUIRE(graph::is_connected(g), "bfs_layer_decomposition needs connectivity");
  if (root == graph::kNoNode) root = graph::peripheral_pair(g).a;
  NAV_REQUIRE(root < n, "root out of range");
  const auto dist = graph::bfs_distances(g, root);
  graph::Dist depth = 0;
  for (const auto d : dist) depth = std::max(depth, d);
  std::vector<Bag> layers(depth + 1);
  for (NodeId v = 0; v < n; ++v) layers[dist[v]].push_back(v);
  if (depth == 0) return PathDecomposition({layers[0]});
  std::vector<Bag> bags;
  bags.reserve(depth);
  for (graph::Dist i = 0; i < depth; ++i) {
    Bag merged = layers[i];
    merged.insert(merged.end(), layers[i + 1].begin(), layers[i + 1].end());
    bags.push_back(std::move(merged));
  }
  return PathDecomposition(std::move(bags));
}

PathDecomposition caterpillar_decomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  NAV_REQUIRE(g.num_edges() == n - 1 && graph::is_connected(g),
              "not a tree");
  if (n <= 2) return trivial_decomposition(g);
  // Spine = non-leaf nodes; must induce a path.
  std::vector<NodeId> spine_nodes;
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) >= 2) spine_nodes.push_back(v);
  }
  if (spine_nodes.empty()) {
    // Single edge / star of one edge handled above; n >= 3 with no degree-2+
    // node is impossible in a tree.
    return trivial_decomposition(g);
  }
  // Order the spine by walking it.
  std::vector<std::uint8_t> on_spine(n, 0);
  for (const NodeId v : spine_nodes) on_spine[v] = 1;
  NodeId start = graph::kNoNode;
  for (const NodeId v : spine_nodes) {
    std::uint32_t spine_deg = 0;
    for (const NodeId w : g.neighbors(v)) spine_deg += on_spine[w];
    NAV_REQUIRE(spine_deg <= 2, "not a caterpillar (branching spine)");
    if (spine_deg <= 1 && start == graph::kNoNode) start = v;
  }
  NAV_REQUIRE(start != graph::kNoNode, "not a caterpillar (cyclic spine?)");
  std::vector<NodeId> spine;
  spine.reserve(spine_nodes.size());
  NodeId prev = graph::kNoNode;
  NodeId cur = start;
  while (cur != graph::kNoNode) {
    spine.push_back(cur);
    NodeId next = graph::kNoNode;
    for (const NodeId w : g.neighbors(cur)) {
      if (on_spine[w] && w != prev) {
        next = w;
        break;
      }
    }
    prev = cur;
    cur = next;
  }
  NAV_REQUIRE(spine.size() == spine_nodes.size(),
              "not a caterpillar (disconnected spine)");
  // Bag i = {spine_i, spine_{i+1}} ∪ leaves(spine_i); last bag also takes the
  // last spine node's leaves.
  std::vector<Bag> bags;
  const std::size_t count = spine.size();
  for (std::size_t i = 0; i < count; ++i) {
    Bag bag{spine[i]};
    if (i + 1 < count) bag.push_back(spine[i + 1]);
    for (const NodeId w : g.neighbors(spine[i])) {
      if (!on_spine[w]) bag.push_back(w);
    }
    bags.push_back(std::move(bag));
  }
  return PathDecomposition(std::move(bags));
}

}  // namespace nav::decomp
