// measures.hpp — width, length, and the paper's new *shape* measure (Def. 2).
//
//   width(X)  = |X| - 1                                   [Robertson–Seymour]
//   length(X) = max_{x,y in X} dist_G(x, y)               [Dourisboure–Gavoille]
//   shape(X)  = min(width(X), length(X))                  [this paper]
//
// The measure of a decomposition is the max over its bags; pathshape ps(G)
// (resp. treeshape ts(G)) is the min over all path- (tree-) decompositions.
// Computing ps(G) exactly is intractable in general; the library computes
// exact measures of *given* decompositions and certified upper bounds via the
// family-specific builders.
#pragma once

#include <cstdint>

#include "decomposition/decomposition.hpp"
#include "graph/bfs.hpp"

namespace nav::decomp {

using graph::Dist;

/// width(X) = |X| - 1 (0 for empty bags, by convention).
[[nodiscard]] std::size_t bag_width(const Bag& bag);

/// length(X) = max pairwise distance in G between bag members.
/// Note the distance is measured in G, not in the induced subgraph — the bag
/// may even be disconnected (paper, §2.2). Cost: one early-exit BFS per bag
/// member.
[[nodiscard]] Dist bag_length(const Graph& g, const Bag& bag);

/// bag_length truncated at `cap`: returns the exact length when it is
/// <= cap, and cap + 1 ("longer than cap") otherwise. Since
/// shape = min(width, length), calling with cap = width(bag) computes the
/// bag's shape while only ever exploring radius-width balls — this is what
/// keeps measuring wide-but-long decompositions (e.g. centroid bags spanning
/// a tree) near-linear instead of quadratic.
[[nodiscard]] Dist bag_length_capped(const Graph& g, const Bag& bag, Dist cap);

/// shape(X) = min(width(X), length(X)).
[[nodiscard]] std::size_t bag_shape(const Graph& g, const Bag& bag);

/// Decomposition-level measures (max over bags).
struct DecompositionMeasures {
  std::size_t width = 0;
  Dist length = 0;
  std::size_t shape = 0;
  std::size_t num_bags = 0;
  std::size_t max_bag_size = 0;
  /// Set when evaluation stopped early because shape reached the caller's
  /// cutoff; `shape` then means "at least this much" (see measure_capped).
  bool shape_truncated = false;
};

[[nodiscard]] DecompositionMeasures measure(const Graph& g,
                                            const PathDecomposition& pd);
[[nodiscard]] DecompositionMeasures measure(const Graph& g,
                                            const TreeDecomposition& td);

/// Width-only fast path (no BFS).
[[nodiscard]] std::size_t width_of(const PathDecomposition& pd);
[[nodiscard]] std::size_t width_of(const TreeDecomposition& td);

}  // namespace nav::decomp
