#include "decomposition/pathshape.hpp"

#include <algorithm>

#include "decomposition/builders.hpp"
#include "decomposition/elimination.hpp"
#include "decomposition/tree_path_decomposition.hpp"
#include "graph/connectivity.hpp"
#include "graph/diameter.hpp"

namespace nav::decomp {

DecompositionMeasures measure_capped(const Graph& g, const PathDecomposition& pd,
                                     std::size_t max_bag_for_length,
                                     std::size_t shape_cutoff) {
  DecompositionMeasures out;
  out.num_bags = pd.num_bags();
  for (const auto& bag : pd.bags()) {
    const std::size_t width = bag_width(bag);
    out.width = std::max(out.width, width);
    out.max_bag_size = std::max(out.max_bag_size, bag.size());

    std::size_t shape = width;
    if (bag.size() <= max_bag_for_length && width > 0) {
      // Length is only shape-relevant below min(width, cutoff): cap the BFS
      // there; a capped-out result means length exceeds the cap.
      const auto cap = static_cast<graph::Dist>(
          std::min<std::size_t>(width, shape_cutoff));
      const auto len = bag_length_capped(g, bag, cap);
      if (len != graph::kInfDist && len <= cap) {
        out.length = std::max<graph::Dist>(out.length, len);
        shape = std::min<std::size_t>(width, len);
      } else {
        out.length = std::max<graph::Dist>(out.length, cap);  // floor only
      }
    }
    out.shape = std::max(out.shape, shape);
    if (out.shape >= shape_cutoff) {
      out.shape = shape_cutoff;
      out.shape_truncated = true;
      return out;  // cannot beat the caller's incumbent
    }
  }
  return out;
}

ShapedDecomposition best_path_decomposition(const Graph& g,
                                            const PathshapeOptions& options) {
  NAV_REQUIRE(g.num_nodes() >= 1, "empty graph");
  NAV_REQUIRE(graph::is_connected(g), "pathshape portfolio needs connectivity");

  std::optional<ShapedDecomposition> best;
  auto consider = [&](PathDecomposition pd, const std::string& method) {
    // Losing candidates stop at the incumbent's shape (one truncated BFS).
    const std::size_t cutoff = best ? best->measures.shape
                                    : std::numeric_limits<std::size_t>::max();
    auto m = measure_capped(g, pd, options.max_bag_for_length, cutoff);
    if (m.shape_truncated) return;  // >= incumbent: cannot win
    const bool better =
        !best || m.shape < best->measures.shape ||
        (m.shape == best->measures.shape && m.num_bags < best->measures.num_bags);
    if (better) best = ShapedDecomposition{std::move(pd), m, method};
  };

  const bool is_tree =
      g.num_edges() == static_cast<graph::EdgeId>(g.num_nodes()) - 1;
  if (is_tree) {
    // Structured tree builders (strictly better than generic ones on trees).
    try {
      consider(caterpillar_decomposition(g), "caterpillar");
    } catch (const std::invalid_argument&) {
      // not a caterpillar — fine, the centroid builder below always applies
    }
    consider(tree_path_decomposition(g), "tree-centroid");
    try {
      consider(path_graph_decomposition(g), "path-walk");
    } catch (const std::invalid_argument&) {
      // not a path graph
    }
  }
  consider(bfs_layer_decomposition(g), "bfs-layer");
  if (g.num_nodes() <= 1024 &&
      g.num_edges() <= 8ull * g.num_nodes()) {
    // Elimination-order candidate: min-degree orderings produce small
    // separators on sparse structured graphs. Gate by size AND density —
    // the full-scan heuristic is quadratic, and clique fill-in on dense
    // inputs (G(n,p), near-regular expanders) can grow the working
    // neighbourhoods to Θ(n), turning it cubic.
    consider(elimination_path_decomposition(
                 g, elimination_ordering(g, EliminationHeuristic::kMinDegree)),
             "elim-min-degree");
  }
  if (options.include_trivial) {
    // The trivial bag's length is exactly diam(G); score it directly (its
    // size exceeds every length cap, so the generic path would misprice it
    // as width n-1 and lose on small-diameter graphs where it is in fact
    // the best certificate: shape = min(n-1, diam)).
    const graph::NodeId n = g.num_nodes();
    graph::Dist diam_ub;
    if (n <= 2048) {
      diam_ub = graph::exact_diameter(g);
    } else {
      // diam <= 2·ecc(v) for any v; one BFS gives ecc(0).
      const auto dist0 = graph::bfs_distances(g, 0);
      graph::Dist ecc0 = 0;
      for (const auto d : dist0) ecc0 = std::max(ecc0, d);
      diam_ub = 2 * ecc0;
    }
    DecompositionMeasures m;
    m.num_bags = 1;
    m.max_bag_size = n;
    m.width = n > 0 ? n - 1 : 0;
    m.length = diam_ub;
    m.shape = std::min<std::size_t>(m.width, diam_ub);
    const bool better = !best || m.shape < best->measures.shape;
    if (better) {
      best = ShapedDecomposition{trivial_decomposition(g), m, "trivial"};
    }
  }

  NAV_ASSERT(best.has_value());
  return std::move(*best);
}

std::size_t pathshape_upper_bound(const Graph& g) {
  return best_path_decomposition(g).measures.shape;
}

}  // namespace nav::decomp
