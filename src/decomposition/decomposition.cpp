#include "decomposition/decomposition.hpp"

#include <algorithm>
#include <sstream>

namespace nav::decomp {

Bag make_bag(std::vector<NodeId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()), vertices.end());
  return vertices;
}

PathDecomposition::PathDecomposition(std::vector<Bag> bags)
    : bags_(std::move(bags)) {
  for (auto& b : bags_) b = make_bag(std::move(b));
}

namespace {

bool bag_contains(const Bag& bag, NodeId v) {
  return std::binary_search(bag.begin(), bag.end(), v);
}

bool is_subset(const Bag& inner, const Bag& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

void set_reason(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
}

}  // namespace

bool PathDecomposition::is_valid(const Graph& g, std::string* why) const {
  const NodeId n = g.num_nodes();
  if (bags_.empty()) {
    if (n == 0) return true;
    set_reason(why, "no bags but graph has vertices");
    return false;
  }
  for (const auto& bag : bags_) {
    for (const NodeId v : bag) {
      if (v >= n) {
        set_reason(why, "bag contains out-of-range vertex " + std::to_string(v));
        return false;
      }
    }
  }
  // Condition 3 first (contiguity), which also yields vertex coverage.
  const auto intervals = node_intervals(n);
  for (NodeId v = 0; v < n; ++v) {
    if (intervals[v].empty()) {
      set_reason(why, "vertex " + std::to_string(v) + " is in no bag");
      return false;
    }
    for (std::size_t i = intervals[v].first; i <= intervals[v].last; ++i) {
      if (!bag_contains(bags_[i], v)) {
        std::ostringstream msg;
        msg << "vertex " << v << " occurrence is not contiguous (missing from bag "
            << i << ")";
        set_reason(why, msg.str());
        return false;
      }
    }
  }
  // Condition 2: every edge inside some bag. The endpoints' intervals must
  // intersect, and any shared bag index works (both are contiguous).
  for (const auto& [u, v] : g.edge_list()) {
    const auto lo = std::max(intervals[u].first, intervals[v].first);
    const auto hi = std::min(intervals[u].last, intervals[v].last);
    if (lo > hi) {
      std::ostringstream msg;
      msg << "edge (" << u << "," << v << ") is covered by no bag";
      set_reason(why, msg.str());
      return false;
    }
  }
  return true;
}

std::vector<PathDecomposition::IndexInterval> PathDecomposition::node_intervals(
    NodeId n) const {
  std::vector<IndexInterval> intervals(n);
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    for (const NodeId v : bags_[i]) {
      if (v >= n) continue;
      if (intervals[v].empty()) {
        intervals[v].first = i;
        intervals[v].last = i;
      } else {
        intervals[v].last = i;
      }
    }
  }
  return intervals;
}

std::size_t PathDecomposition::reduce() {
  std::size_t removed = 0;
  bool changed = true;
  while (changed && bags_.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < bags_.size(); ++i) {
      const bool sub_prev = i > 0 && is_subset(bags_[i], bags_[i - 1]);
      const bool sub_next =
          i + 1 < bags_.size() && is_subset(bags_[i], bags_[i + 1]);
      if (sub_prev || sub_next || bags_[i].empty()) {
        bags_.erase(bags_.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

TreeDecomposition::TreeDecomposition(
    std::vector<Bag> bags,
    std::vector<std::pair<std::size_t, std::size_t>> tree_edges)
    : bags_(std::move(bags)), edges_(std::move(tree_edges)) {
  for (auto& b : bags_) b = make_bag(std::move(b));
  for (const auto& [a, b] : edges_) {
    NAV_REQUIRE(a < bags_.size() && b < bags_.size(),
                "tree edge references missing bag");
    NAV_REQUIRE(a != b, "tree self loop");
  }
}

bool TreeDecomposition::is_valid(const Graph& g, std::string* why) const {
  const NodeId n = g.num_nodes();
  if (bags_.empty()) {
    if (n == 0) return true;
    set_reason(why, "no bags but graph has vertices");
    return false;
  }
  // The bag connectivity structure must be a tree.
  if (edges_.size() + 1 != bags_.size()) {
    set_reason(why, "bag tree is not a tree (edge count)");
    return false;
  }
  std::vector<std::vector<std::size_t>> adj(bags_.size());
  for (const auto& [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  {
    std::vector<std::uint8_t> seen(bags_.size(), 0);
    std::vector<std::size_t> queue{0};
    seen[0] = 1;
    std::size_t head = 0, reached = 1;
    while (head < queue.size()) {
      const auto i = queue[head++];
      for (const auto j : adj[i]) {
        if (!seen[j]) {
          seen[j] = 1;
          ++reached;
          queue.push_back(j);
        }
      }
    }
    if (reached != bags_.size()) {
      set_reason(why, "bag tree is disconnected");
      return false;
    }
  }
  // Vertex coverage + subtree condition: for each vertex, the bags holding it
  // must form a connected subgraph of the bag tree.
  std::vector<std::vector<std::size_t>> holding(n);
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    for (const NodeId v : bags_[i]) {
      if (v >= n) {
        set_reason(why, "bag contains out-of-range vertex " + std::to_string(v));
        return false;
      }
      holding[v].push_back(i);
    }
  }
  std::vector<std::uint8_t> in_set(bags_.size(), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (holding[v].empty()) {
      set_reason(why, "vertex " + std::to_string(v) + " is in no bag");
      return false;
    }
    for (const auto i : holding[v]) in_set[i] = 1;
    std::vector<std::size_t> queue{holding[v][0]};
    std::vector<std::uint8_t> seen(bags_.size(), 0);
    seen[holding[v][0]] = 1;
    std::size_t head = 0, reached = 1;
    while (head < queue.size()) {
      const auto i = queue[head++];
      for (const auto j : adj[i]) {
        if (in_set[j] && !seen[j]) {
          seen[j] = 1;
          ++reached;
          queue.push_back(j);
        }
      }
    }
    const bool connected = reached == holding[v].size();
    for (const auto i : holding[v]) in_set[i] = 0;
    if (!connected) {
      set_reason(why,
                 "vertex " + std::to_string(v) + " does not induce a subtree");
      return false;
    }
  }
  // Edge coverage.
  for (const auto& [u, v] : g.edge_list()) {
    bool covered = false;
    for (const auto i : holding[u]) {
      if (bag_contains(bags_[i], v)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      std::ostringstream msg;
      msg << "edge (" << u << "," << v << ") is covered by no bag";
      set_reason(why, msg.str());
      return false;
    }
  }
  return true;
}

TreeDecomposition to_tree_decomposition(const PathDecomposition& pd) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < pd.num_bags(); ++i) edges.emplace_back(i, i + 1);
  return TreeDecomposition(pd.bags(), std::move(edges));
}

}  // namespace nav::decomp
