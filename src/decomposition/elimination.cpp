#include "decomposition/elimination.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "graph/connectivity.hpp"

namespace nav::decomp {

namespace {

/// Mutable adjacency (set-based) for elimination simulation.
std::vector<std::set<NodeId>> mutable_adjacency(const Graph& g) {
  std::vector<std::set<NodeId>> adj(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    adj[u].insert(nbrs.begin(), nbrs.end());
  }
  return adj;
}

/// Number of fill edges eliminating v would create.
std::size_t fill_cost(const std::vector<std::set<NodeId>>& adj, NodeId v) {
  std::size_t missing = 0;
  for (auto it = adj[v].begin(); it != adj[v].end(); ++it) {
    auto jt = it;
    for (++jt; jt != adj[v].end(); ++jt) {
      if (adj[*it].find(*jt) == adj[*it].end()) ++missing;
    }
  }
  return missing;
}

/// Removes v, connecting its neighbourhood into a clique.
void eliminate(std::vector<std::set<NodeId>>& adj, NodeId v) {
  const std::vector<NodeId> nbrs(adj[v].begin(), adj[v].end());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      adj[nbrs[i]].insert(nbrs[j]);
      adj[nbrs[j]].insert(nbrs[i]);
    }
  }
  for (const NodeId w : nbrs) adj[w].erase(v);
  adj[v].clear();
}

}  // namespace

std::vector<NodeId> elimination_ordering(const Graph& g,
                                         EliminationHeuristic heuristic) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  auto adj = mutable_adjacency(g);
  std::vector<std::uint8_t> gone(n, 0);
  std::vector<NodeId> ordering;
  ordering.reserve(n);
  for (NodeId step = 0; step < n; ++step) {
    NodeId best = graph::kNoNode;
    std::size_t best_score = std::numeric_limits<std::size_t>::max();
    for (NodeId v = 0; v < n; ++v) {
      if (gone[v]) continue;
      const std::size_t score = heuristic == EliminationHeuristic::kMinDegree
                                    ? adj[v].size()
                                    : fill_cost(adj, v);
      if (score < best_score) {
        best_score = score;
        best = v;
        if (score == 0 && heuristic == EliminationHeuristic::kMinFill) break;
      }
    }
    NAV_ASSERT(best != graph::kNoNode);
    ordering.push_back(best);
    gone[best] = 1;
    eliminate(adj, best);
  }
  return ordering;
}

TreeDecomposition elimination_tree_decomposition(
    const Graph& g, const std::vector<NodeId>& ordering) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(ordering.size() == n, "ordering size mismatch");
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (const NodeId v : ordering) {
      NAV_REQUIRE(v < n && !seen[v], "ordering is not a permutation");
      seen[v] = 1;
    }
  }
  if (n == 1) return TreeDecomposition({{ordering[0]}}, {});

  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < ordering.size(); ++i) position[ordering[i]] = i;

  auto adj = mutable_adjacency(g);
  std::vector<Bag> bags(n);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < ordering.size(); ++i) {
    const NodeId v = ordering[i];
    Bag bag{v};
    // Earliest-eliminated remaining neighbour becomes the parent bag.
    std::size_t parent_pos = std::numeric_limits<std::size_t>::max();
    for (const NodeId w : adj[v]) {
      bag.push_back(w);
      parent_pos = std::min(parent_pos, position[w]);
    }
    bags[i] = std::move(bag);
    if (parent_pos != std::numeric_limits<std::size_t>::max()) {
      edges.emplace_back(i, parent_pos);
    } else if (i + 1 < ordering.size()) {
      // Isolated in the remainder (disconnected input or the very last
      // pair): hang under the next bag to keep the bag tree connected.
      edges.emplace_back(i, i + 1);
    }
    eliminate(adj, v);
  }
  return TreeDecomposition(std::move(bags), std::move(edges));
}

TreeDecomposition elimination_tree_decomposition(const Graph& g,
                                                 EliminationHeuristic heuristic) {
  return elimination_tree_decomposition(g, elimination_ordering(g, heuristic));
}

PathDecomposition elimination_path_decomposition(
    const Graph& g, const std::vector<NodeId>& ordering) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(ordering.size() == n, "ordering size mismatch");
  std::vector<std::size_t> position(n, 0);
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t i = 0; i < ordering.size(); ++i) {
      const NodeId v = ordering[i];
      NAV_REQUIRE(v < n && !seen[v], "ordering is not a permutation");
      seen[v] = 1;
      position[v] = i;
    }
  }
  // last_pos[u] = latest position among u and its neighbours: u stays in
  // bags while some neighbour (or u itself) has not been placed yet.
  std::vector<std::size_t> last_pos(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    last_pos[u] = position[u];
    for (const NodeId w : g.neighbors(u)) {
      last_pos[u] = std::max(last_pos[u], position[w]);
    }
  }
  std::vector<Bag> bags(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t i = position[u]; i <= last_pos[u]; ++i) {
      bags[i].push_back(u);
    }
  }
  PathDecomposition pd(std::move(bags));
  pd.reduce();
  return pd;
}

}  // namespace nav::decomp
