// tree_path_decomposition.hpp — path decomposition of trees, width O(log n).
//
// Corollary 1 needs "trees have pathshape O(log n)". We realise it
// constructively by centroid recursion:
//   * pick a centroid c (every component of T - c has <= n/2 nodes);
//   * recursively decompose each component into a bag sequence;
//   * concatenate the sequences and add c to every bag.
// Validity: c is in every bag, so edges (c, ·) and the contiguity of c are
// automatic; everything else is inherited from the recursion (components are
// vertex-disjoint, so concatenation keeps occurrences contiguous).
// Width: W(n) <= W(n/2) + 1 => W(n) <= ceil(log2 n).
#pragma once

#include "decomposition/decomposition.hpp"

namespace nav::decomp {

/// Requires g to be a tree (connected, m = n-1); throws otherwise.
/// Guaranteed width <= ceil(log2(n)) (so pathshape(tree) = O(log n)).
[[nodiscard]] PathDecomposition tree_path_decomposition(const Graph& g);

/// The centroid of the subtree induced by `nodes` (every removal component
/// has size <= |nodes|/2). Exposed for tests. `nodes` must induce a subtree.
[[nodiscard]] NodeId subtree_centroid(const Graph& g,
                                      const std::vector<NodeId>& nodes);

}  // namespace nav::decomp
