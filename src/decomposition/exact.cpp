#include "decomposition/exact.hpp"

#include <algorithm>
#include <vector>

namespace nav::decomp {

namespace {

constexpr NodeId kMaxExactNodes = 22;

/// |{u in S : u has a neighbour outside S}| for subset bitmask S.
std::uint32_t boundary_size(const std::vector<std::uint32_t>& nbr_mask,
                            std::uint32_t s, NodeId n) {
  std::uint32_t count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if ((s >> v) & 1u) {
      if ((nbr_mask[v] & ~s) != 0) ++count;
    }
  }
  return count;
}

}  // namespace

ExactPathwidthResult exact_pathwidth_witness(const Graph& g) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  NAV_REQUIRE(n <= kMaxExactNodes, "exact pathwidth limited to n <= 22");

  std::vector<std::uint32_t> nbr_mask(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) nbr_mask[u] |= (1u << v);
  }

  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  // f[S] = min over orderings of S placed first of max prefix boundary.
  // uint8 suffices (boundary <= 22).
  std::vector<std::uint8_t> f(static_cast<std::size_t>(full) + 1, 0xff);
  std::vector<std::uint8_t> pick(static_cast<std::size_t>(full) + 1, 0xff);
  f[0] = 0;
  for (std::uint32_t s = 1; s <= full; ++s) {
    const auto b = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(boundary_size(nbr_mask, s, n), 0xfe));
    std::uint8_t best = 0xff;
    std::uint8_t best_v = 0xff;
    for (NodeId v = 0; v < n; ++v) {
      if (!((s >> v) & 1u)) continue;
      const std::uint32_t prev = s & ~(1u << v);
      const std::uint8_t cand = std::max(f[prev], b);
      if (cand < best) {
        best = cand;
        best_v = static_cast<std::uint8_t>(v);
      }
    }
    f[s] = best;
    pick[s] = best_v;
  }

  ExactPathwidthResult result;
  result.pathwidth = f[full];

  // Reconstruct the ordering back to front.
  std::vector<NodeId> ordering(n);
  std::uint32_t s = full;
  for (NodeId i = n; i > 0; --i) {
    const NodeId v = pick[s];
    ordering[i - 1] = v;
    s &= ~(1u << v);
  }
  result.ordering = ordering;

  // Convert layout -> decomposition: bag_i = boundary(P_i) ∪ {v_{i+1}}
  // (plus bag_0 = {v_1}); standard VSN-to-pathwidth construction.
  std::vector<Bag> bags;
  std::uint32_t prefix = 0;
  for (NodeId i = 0; i < n; ++i) {
    Bag bag;
    for (NodeId v = 0; v < n; ++v) {
      if (((prefix >> v) & 1u) && (nbr_mask[v] & ~prefix)) bag.push_back(v);
    }
    bag.push_back(ordering[i]);
    bags.push_back(std::move(bag));
    prefix |= (1u << ordering[i]);
  }
  result.decomposition = PathDecomposition(std::move(bags));
  result.decomposition.reduce();
  return result;
}

std::size_t exact_pathwidth(const Graph& g) {
  return exact_pathwidth_witness(g).pathwidth;
}

}  // namespace nav::decomp
