// builders.hpp — generic path-decomposition constructions.
//
// These builders are always *valid*; their measured shape varies by family.
// Family-specific builders with provable shape bounds live in
// tree_path_decomposition.hpp (trees, width O(log n)),
// interval_decomposition.hpp (interval graphs, length <= 1) and
// permutation_decomposition.hpp (permutation graphs, length <= 2).
#pragma once

#include "decomposition/decomposition.hpp"

namespace nav::decomp {

/// Single bag containing every vertex. shape = min(n-1, diam(G)).
[[nodiscard]] PathDecomposition trivial_decomposition(const Graph& g);

/// For a path graph (each node degree <= 2, no cycle): bags {v_i, v_{i+1}}
/// along the path — width 1, length 1, shape 1 (witnesses ps(path) = 1).
/// Requires g to be a path graph (else throws std::invalid_argument).
[[nodiscard]] PathDecomposition path_graph_decomposition(const Graph& g);

/// BFS-layer decomposition: root r, layers L_0.. L_d, bags X_i = L_i ∪ L_{i+1}.
/// Always valid for connected graphs:
///   * every edge joins nodes in the same or consecutive layers;
///   * node in L_i appears exactly in bags i-1, i — contiguous.
/// Width = 2·(max layer size) - 1; length <= 2·eccentricity... in practice the
/// measure of interest is the *shape*, evaluated by the caller.
/// Root defaults to a double-sweep peripheral node (maximises layer count and
/// hence minimises typical layer sizes).
[[nodiscard]] PathDecomposition bfs_layer_decomposition(
    const Graph& g, NodeId root = graph::kNoNode);

/// Caterpillar decomposition: bags {s_i, s_{i+1}} ∪ legs(s_i) along the spine.
/// Valid for caterpillars (trees whose non-leaf nodes form a path); width =
/// max legs + 1, length <= 2. Throws if g is not a caterpillar.
[[nodiscard]] PathDecomposition caterpillar_decomposition(const Graph& g);

}  // namespace nav::decomp
