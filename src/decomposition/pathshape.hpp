// pathshape.hpp — best-effort pathshape upper bounds (builder portfolio).
//
// ps(G) is the min over all path decompositions of the max per-bag
// min(width, length). Exact computation is intractable; Theorem 2 only needs
// *some* decomposition with small shape plus the derived labeling, so the
// library runs every applicable builder and keeps the best.
//
// Certified per-family bounds (from the structured builders):
//   path            ps = 1            (path_graph_decomposition)
//   caterpillar     ps <= 2           (caterpillar_decomposition)
//   tree            ps <= ceil(log2 n) (tree_path_decomposition)
//   interval graph  ps <= 1           (interval_decomposition, via model)
//   permutation     ps <= 2           (permutation_decomposition, via model)
//   any G           ps <= min over {bfs-layer, trivial} shapes
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "decomposition/decomposition.hpp"
#include "decomposition/measures.hpp"

namespace nav::decomp {

struct ShapedDecomposition {
  PathDecomposition decomposition;
  DecompositionMeasures measures;
  std::string method;  // builder that won
};

/// Options controlling the portfolio.
struct PathshapeOptions {
  /// Evaluating bag length costs one BFS per bag member; bags larger than
  /// this cap are scored by width alone (still a correct upper bound for
  /// shape, since shape <= width).
  std::size_t max_bag_for_length = 512;
  /// Skip the trivial single-bag candidate (whose shape is the diameter) —
  /// useful when the caller only wants structured decompositions.
  bool include_trivial = true;
};

/// Runs every applicable builder on g, measures each result, returns the one
/// with the smallest shape (ties: fewer bags). Never fails on a connected
/// graph (bfs-layer and trivial always apply).
[[nodiscard]] ShapedDecomposition best_path_decomposition(
    const Graph& g, const PathshapeOptions& options = {});

/// Shape of best_path_decomposition — an upper bound on ps(G).
[[nodiscard]] std::size_t pathshape_upper_bound(const Graph& g);

/// Measures a given decomposition with the length-evaluation cap applied
/// (shape scored by width alone for oversized bags; still an upper bound).
/// `shape_cutoff`: once some bag certifies shape >= shape_cutoff the whole
/// evaluation stops (result.shape = shape_cutoff, shape_truncated = true) —
/// the portfolio uses the best-so-far shape here so that losing candidates
/// cost one small truncated BFS instead of a full measurement.
[[nodiscard]] DecompositionMeasures measure_capped(
    const Graph& g, const PathDecomposition& pd,
    std::size_t max_bag_for_length,
    std::size_t shape_cutoff = std::numeric_limits<std::size_t>::max());

}  // namespace nav::decomp
