#include "decomposition/measures.hpp"

#include <algorithm>

#include "graph/bfs_engine.hpp"

namespace nav::decomp {

std::size_t bag_width(const Bag& bag) {
  return bag.empty() ? 0 : bag.size() - 1;
}

namespace {

/// Max distance from `source` to any bag member: early-exit BFS on the
/// engine workspace (visited via epoch stamps, bag membership via the
/// workspace's second marker channel). Stops as soon as every member has
/// been reached, or once the depth exceeds `cap` (then the true value is
/// > cap and kInfDist is returned as "too far"). The caller owns the epoch:
/// ws.prepare + mark(bag) must precede each call.
Dist farthest_member(const Graph& g, const Bag& bag, NodeId source,
                     graph::BfsWorkspace& ws, Dist cap) {
  std::size_t remaining = bag.size();
  auto& queue = ws.queue();
  queue.clear();
  ws.try_visit(source);
  queue.push_back(source);
  if (ws.marked(source)) --remaining;
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist depth = 0;
  Dist farthest = 0;
  while (head < queue.size() && remaining > 0 && depth < cap) {
    while (head < level_end && remaining > 0) {
      const NodeId u = queue[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (ws.try_visit(v)) {
          queue.push_back(v);
          if (ws.marked(v)) {
            --remaining;
            farthest = depth + 1;
          }
        }
      }
    }
    ++depth;
    level_end = queue.size();
  }
  return remaining == 0 ? farthest : graph::kInfDist;
}

/// bag_length runs one early-exit BFS per bag member, and decompositions can
/// have Θ(n) bags — the workspace's O(1) epoch reset is what keeps measuring
/// a decomposition linear instead of quadratic.
Dist length_impl(const Graph& g, const Bag& bag, Dist cap) {
  auto& ws = graph::local_bfs_workspace();
  Dist length = 0;
  for (const NodeId u : bag) {
    // Fresh visit epoch per source, re-marking membership under it.
    ws.prepare(g.num_nodes());
    for (const NodeId v : bag) ws.mark(v);
    const Dist d = farthest_member(g, bag, u, ws, cap);
    if (d == graph::kInfDist) return graph::kInfDist;  // unreachable or > cap
    length = std::max(length, d);
  }
  return length;
}

/// True if every pair in the (small) bag is adjacent — length 1 shortcut.
bool is_clique_bag(const Graph& g, const Bag& bag) {
  if (bag.size() > 64) return false;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      if (!g.has_edge(bag[i], bag[j])) return false;
    }
  }
  return true;
}

}  // namespace

Dist bag_length(const Graph& g, const Bag& bag) {
  if (bag.size() <= 1) return 0;
  if (is_clique_bag(g, bag)) return 1;  // covers edge bags & clique paths
  return length_impl(g, bag, graph::kInfDist);
}

Dist bag_length_capped(const Graph& g, const Bag& bag, Dist cap) {
  if (bag.size() <= 1) return 0;
  if (cap == 0) return bag.size() > 1 ? 1 : 0;  // any two nodes differ
  if (is_clique_bag(g, bag)) return 1;
  const Dist d = length_impl(g, bag, cap);
  return d == graph::kInfDist ? cap + 1 : d;
}

std::size_t bag_shape(const Graph& g, const Bag& bag) {
  const std::size_t width = bag_width(bag);
  if (width == 0) return 0;
  // Short-circuit: length is only needed when it could be smaller than width.
  const Dist length = bag_length(g, bag);
  if (length == graph::kInfDist) return width;
  return std::min<std::size_t>(width, length);
}

namespace {

template <typename Decomposition>
DecompositionMeasures measure_impl(const Graph& g, const Decomposition& d) {
  DecompositionMeasures out;
  out.num_bags = d.num_bags();
  for (const auto& bag : d.bags()) {
    out.width = std::max(out.width, bag_width(bag));
    out.max_bag_size = std::max(out.max_bag_size, bag.size());
    const Dist len = bag_length(g, bag);
    if (len != graph::kInfDist) out.length = std::max(out.length, len);
    out.shape = std::max(out.shape, bag_shape(g, bag));
  }
  return out;
}

}  // namespace

DecompositionMeasures measure(const Graph& g, const PathDecomposition& pd) {
  return measure_impl(g, pd);
}

DecompositionMeasures measure(const Graph& g, const TreeDecomposition& td) {
  return measure_impl(g, td);
}

std::size_t width_of(const PathDecomposition& pd) {
  std::size_t w = 0;
  for (const auto& bag : pd.bags()) w = std::max(w, bag_width(bag));
  return w;
}

std::size_t width_of(const TreeDecomposition& td) {
  std::size_t w = 0;
  for (const auto& bag : td.bags()) w = std::max(w, bag_width(bag));
  return w;
}

}  // namespace nav::decomp
