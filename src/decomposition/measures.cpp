#include "decomposition/measures.hpp"

#include <algorithm>

namespace nav::decomp {

std::size_t bag_width(const Bag& bag) {
  return bag.empty() ? 0 : bag.size() - 1;
}

namespace {

/// Epoch-stamped BFS scratch: bag_length runs one early-exit BFS per bag
/// member, and decompositions can have Θ(n) bags, so per-call O(n) clearing
/// would make measuring a decomposition quadratic.
struct LengthScratch {
  std::vector<std::uint64_t> stamp;   // visited marker
  std::vector<std::uint64_t> member;  // bag-membership marker
  std::vector<NodeId> queue;
  std::uint64_t epoch = 0;

  void prepare(std::size_t n) {
    if (stamp.size() < n) {
      stamp.assign(n, 0);
      member.assign(n, 0);
    }
    ++epoch;
    queue.clear();
  }
};

LengthScratch& length_scratch() {
  thread_local LengthScratch s;
  return s;
}

/// Max distance from `source` to any bag member: BFS that stops as soon as
/// every member has been reached, or once the depth exceeds `cap` (then the
/// true value is > cap and kInfDist is returned as "too far").
Dist farthest_member(const Graph& g, const Bag& bag, NodeId source,
                     LengthScratch& s, Dist cap) {
  std::size_t remaining = bag.size();
  s.queue.clear();
  const std::uint64_t visit_mark = s.epoch;
  s.stamp[source] = visit_mark;
  s.queue.push_back(source);
  if (s.member[source] == s.epoch) --remaining;
  std::size_t head = 0;
  std::size_t level_end = 1;
  Dist depth = 0;
  Dist farthest = 0;
  while (head < s.queue.size() && remaining > 0 && depth < cap) {
    while (head < level_end && remaining > 0) {
      const NodeId u = s.queue[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (s.stamp[v] != visit_mark) {
          s.stamp[v] = visit_mark;
          s.queue.push_back(v);
          if (s.member[v] == s.epoch) {
            --remaining;
            farthest = depth + 1;
          }
        }
      }
    }
    ++depth;
    level_end = s.queue.size();
  }
  return remaining == 0 ? farthest : graph::kInfDist;
}

Dist length_impl(const Graph& g, const Bag& bag, Dist cap) {
  auto& s = length_scratch();
  s.prepare(g.num_nodes());
  for (const NodeId v : bag) s.member[v] = s.epoch;
  Dist length = 0;
  for (const NodeId u : bag) {
    const Dist d = farthest_member(g, bag, u, s, cap);
    if (d == graph::kInfDist) return graph::kInfDist;  // unreachable or > cap
    length = std::max(length, d);
    // Fresh visit epoch for the next source, re-marking membership.
    ++s.epoch;
    for (const NodeId v : bag) s.member[v] = s.epoch;
  }
  return length;
}

/// True if every pair in the (small) bag is adjacent — length 1 shortcut.
bool is_clique_bag(const Graph& g, const Bag& bag) {
  if (bag.size() > 64) return false;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      if (!g.has_edge(bag[i], bag[j])) return false;
    }
  }
  return true;
}

}  // namespace

Dist bag_length(const Graph& g, const Bag& bag) {
  if (bag.size() <= 1) return 0;
  if (is_clique_bag(g, bag)) return 1;  // covers edge bags & clique paths
  return length_impl(g, bag, graph::kInfDist);
}

Dist bag_length_capped(const Graph& g, const Bag& bag, Dist cap) {
  if (bag.size() <= 1) return 0;
  if (cap == 0) return bag.size() > 1 ? 1 : 0;  // any two nodes differ
  if (is_clique_bag(g, bag)) return 1;
  const Dist d = length_impl(g, bag, cap);
  return d == graph::kInfDist ? cap + 1 : d;
}

std::size_t bag_shape(const Graph& g, const Bag& bag) {
  const std::size_t width = bag_width(bag);
  if (width == 0) return 0;
  // Short-circuit: length is only needed when it could be smaller than width.
  const Dist length = bag_length(g, bag);
  if (length == graph::kInfDist) return width;
  return std::min<std::size_t>(width, length);
}

namespace {

template <typename Decomposition>
DecompositionMeasures measure_impl(const Graph& g, const Decomposition& d) {
  DecompositionMeasures out;
  out.num_bags = d.num_bags();
  for (const auto& bag : d.bags()) {
    out.width = std::max(out.width, bag_width(bag));
    out.max_bag_size = std::max(out.max_bag_size, bag.size());
    const Dist len = bag_length(g, bag);
    if (len != graph::kInfDist) out.length = std::max(out.length, len);
    out.shape = std::max(out.shape, bag_shape(g, bag));
  }
  return out;
}

}  // namespace

DecompositionMeasures measure(const Graph& g, const PathDecomposition& pd) {
  return measure_impl(g, pd);
}

DecompositionMeasures measure(const Graph& g, const TreeDecomposition& td) {
  return measure_impl(g, td);
}

std::size_t width_of(const PathDecomposition& pd) {
  std::size_t w = 0;
  for (const auto& bag : pd.bags()) w = std::max(w, bag_width(bag));
  return w;
}

std::size_t width_of(const TreeDecomposition& td) {
  std::size_t w = 0;
  for (const auto& bag : td.bags()) w = std::max(w, bag_width(bag));
  return w;
}

}  // namespace nav::decomp
