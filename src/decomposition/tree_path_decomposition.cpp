#include "decomposition/tree_path_decomposition.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"

namespace nav::decomp {

namespace {

/// Work context shared by the recursion: membership flags double as the
/// "still in current subproblem" marker, avoiding repeated allocation.
struct CentroidContext {
  const Graph& g;
  std::vector<std::uint8_t> active;        // node -> in current subproblem
  std::vector<std::uint32_t> subtree_size; // scratch for size computation
};

/// Computes sizes of the subtree rooted at `root` (within active nodes) and
/// returns the centroid. Iterative DFS to avoid stack depth issues on paths.
NodeId centroid_of(CentroidContext& ctx, NodeId root, std::uint32_t total) {
  // Post-order size computation.
  std::vector<std::pair<NodeId, NodeId>> stack;  // (node, parent)
  std::vector<std::pair<NodeId, NodeId>> order;
  stack.emplace_back(root, graph::kNoNode);
  while (!stack.empty()) {
    const auto [u, parent] = stack.back();
    stack.pop_back();
    order.emplace_back(u, parent);
    for (const NodeId v : ctx.g.neighbors(u)) {
      if (v != parent && ctx.active[v]) stack.emplace_back(v, u);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto [u, parent] = *it;
    ctx.subtree_size[u] = 1;
    for (const NodeId v : ctx.g.neighbors(u)) {
      if (v != parent && ctx.active[v]) ctx.subtree_size[u] += ctx.subtree_size[v];
    }
  }
  NAV_ASSERT(ctx.subtree_size[root] == total);
  // Walk down towards the heavy side until balanced.
  NodeId u = root;
  NodeId parent = graph::kNoNode;
  while (true) {
    NodeId heavy = graph::kNoNode;
    std::uint32_t heavy_size = 0;
    for (const NodeId v : ctx.g.neighbors(u)) {
      if (v != parent && ctx.active[v] && ctx.subtree_size[v] > heavy_size) {
        heavy = v;
        heavy_size = ctx.subtree_size[v];
      }
    }
    const std::uint32_t up_size = total - ctx.subtree_size[u];
    if (std::max(heavy_size, up_size) <= total / 2) return u;
    NAV_ASSERT(heavy != graph::kNoNode);
    parent = u;
    u = heavy;
  }
}

/// Size of the active component containing `start` (trees: DFS with parent).
std::uint32_t component_size(const CentroidContext& ctx, NodeId start,
                             NodeId blocked_parent) {
  std::uint32_t size = 0;
  std::vector<std::pair<NodeId, NodeId>> walk{{start, blocked_parent}};
  while (!walk.empty()) {
    const auto [u, parent] = walk.back();
    walk.pop_back();
    ++size;
    for (const NodeId w : ctx.g.neighbors(u)) {
      if (w != parent && ctx.active[w]) walk.emplace_back(w, u);
    }
  }
  return size;
}

/// Appends the decomposition of the active subtree containing `root`
/// (size `total`) to `bags`. Every bag emitted while a centroid is on the
/// `spine` contains that centroid, which is what makes the concatenation a
/// valid path decomposition (see header).
void decompose(CentroidContext& ctx, NodeId root, std::uint32_t total,
               std::vector<NodeId>& spine, std::vector<Bag>& bags) {
  const NodeId c = centroid_of(ctx, root, total);
  ctx.active[c] = 0;
  spine.push_back(c);
  bool any_child = false;
  for (const NodeId v : ctx.g.neighbors(c)) {
    if (!ctx.active[v]) continue;
    any_child = true;
    decompose(ctx, v, component_size(ctx, v, c), spine, bags);
  }
  if (!any_child) {
    bags.emplace_back(spine);  // recursion leaf: bag = enclosing centroids + c
  }
  spine.pop_back();
}

}  // namespace

NodeId subtree_centroid(const Graph& g, const std::vector<NodeId>& nodes) {
  NAV_REQUIRE(!nodes.empty(), "empty subtree");
  CentroidContext ctx{g, std::vector<std::uint8_t>(g.num_nodes(), 0),
                      std::vector<std::uint32_t>(g.num_nodes(), 0)};
  for (const NodeId v : nodes) ctx.active[v] = 1;
  return centroid_of(ctx, nodes[0], static_cast<std::uint32_t>(nodes.size()));
}

PathDecomposition tree_path_decomposition(const Graph& g) {
  const NodeId n = g.num_nodes();
  NAV_REQUIRE(n >= 1, "empty graph");
  NAV_REQUIRE(g.num_edges() == static_cast<graph::EdgeId>(n) - 1 &&
                  graph::is_connected(g),
              "tree_path_decomposition requires a tree");
  CentroidContext ctx{g, std::vector<std::uint8_t>(g.num_nodes(), 1),
                      std::vector<std::uint32_t>(g.num_nodes(), 0)};
  std::vector<NodeId> spine;
  std::vector<Bag> bags;
  decompose(ctx, 0, n, spine, bags);
  PathDecomposition pd(std::move(bags));
  pd.reduce();
  return pd;
}

}  // namespace nav::decomp
