// exact.hpp — exact pathwidth for small graphs (reference oracle).
//
// pathwidth(G) equals the vertex separation number (VSN): the minimum over
// vertex orderings v_1..v_n of the maximum, over prefixes P_i = {v_1..v_i},
// of |{u in P_i : u has a neighbour outside P_i}| (Kinnersley 1992).
//
// DP over subsets: f(S) = min_{v in S} max(f(S \ {v}), boundary(S)), with
// f(∅) = 0. O(2^n · n) time, O(2^n) bytes — practical to n ≈ 22.
//
// The ordering reconstructed from the DP converts into a path decomposition
// of width = VSN: bag_i = boundary(P_i) ∪ {v_{i+1}}.
//
// Exact *pathshape* has no analogous small-certificate DP (an optimal-shape
// decomposition may use bags much larger than any separator, trading width
// for small length — e.g. whole cliques), so the library provides exact
// pathwidth as the reference upper bound ps(G) <= pw(G) plus per-family
// provable bounds from the structured builders (DESIGN.md §2.3).
#pragma once

#include <cstdint>

#include "decomposition/decomposition.hpp"

namespace nav::decomp {

/// Exact pathwidth. Requires n <= 22 (throws otherwise).
[[nodiscard]] std::size_t exact_pathwidth(const Graph& g);

/// Exact pathwidth plus a witness decomposition achieving it.
struct ExactPathwidthResult {
  std::size_t pathwidth = 0;
  PathDecomposition decomposition;
  std::vector<NodeId> ordering;  // the optimal vertex layout
};
[[nodiscard]] ExactPathwidthResult exact_pathwidth_witness(const Graph& g);

}  // namespace nav::decomp
