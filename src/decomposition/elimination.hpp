// elimination.hpp — tree decompositions from elimination orderings.
//
// The classical constructive route to tree decompositions: eliminate
// vertices one by one, connecting the current neighbourhood into a clique
// (the fill-in); the bag of v is {v} ∪ N(v) at elimination time, and v's bag
// hangs under the bag of its earliest-eliminated remaining neighbour. Width
// = max bag - 1; the ordering heuristic determines quality:
//   * min-degree  — eliminate the vertex of smallest current degree;
//   * min-fill    — eliminate the vertex whose elimination adds the fewest
//                   fill edges.
// Both are the standard baselines in treewidth practice. The resulting
// *tree* decomposition also converts to a path decomposition by bag order
// (valid but usually wider) — giving the pathshape portfolio another
// generic candidate on dense graphs.
#pragma once

#include "decomposition/decomposition.hpp"

namespace nav::decomp {

enum class EliminationHeuristic { kMinDegree, kMinFill };

/// The elimination ordering chosen by the heuristic. O(n·m)-ish with the
/// simple set-based implementation (fine at library scale).
[[nodiscard]] std::vector<NodeId> elimination_ordering(
    const Graph& g, EliminationHeuristic heuristic);

/// Tree decomposition induced by an elimination ordering (see header).
/// Valid for any connected graph and any permutation ordering.
[[nodiscard]] TreeDecomposition elimination_tree_decomposition(
    const Graph& g, const std::vector<NodeId>& ordering);

/// Convenience: ordering + decomposition in one call.
[[nodiscard]] TreeDecomposition elimination_tree_decomposition(
    const Graph& g, EliminationHeuristic heuristic);

/// Path decomposition obtained by *cumulative separators* along the
/// elimination order (the vertex-separation construction over the reversed
/// ordering): bag_i = {v_i} ∪ {earlier vertices with a neighbour at or after
/// position i}. Always valid; width = max separator size.
[[nodiscard]] PathDecomposition elimination_path_decomposition(
    const Graph& g, const std::vector<NodeId>& ordering);

}  // namespace nav::decomp
