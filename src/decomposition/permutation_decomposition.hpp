// permutation_decomposition.hpp — cut decomposition of permutation graphs.
//
// Bag c (c = 1..n-1) is the set of diagram segments crossing the vertical cut
// between positions c-1 and c, plus — for coverage — the fixed point u = c-1
// when π(u) = u. Properties (proved in the .cpp comments, pinned by tests):
//   * valid path decomposition;
//   * length <= 2: a left-crosser and a right-crosser of the same cut are
//     always adjacent, and crossers on the same side share any opposite-side
//     crosser as a common neighbour (left/right crossers are equinumerous,
//     so one exists whenever the bag has >= 2 segments).
// Hence pathshape(permutation graph) <= 2 — the second AT-free exemplar of
// Corollary 1.
#pragma once

#include "decomposition/decomposition.hpp"
#include "graph/permutation_model.hpp"

namespace nav::decomp {

[[nodiscard]] PathDecomposition permutation_decomposition(
    const graph::PermutationModel& model);

}  // namespace nav::decomp
