#include "decomposition/interval_decomposition.hpp"

namespace nav::decomp {

PathDecomposition interval_decomposition(const graph::IntervalModel& model) {
  std::vector<Bag> bags;
  for (const auto x : model.event_points()) {
    bags.push_back(model.stab(x));
  }
  PathDecomposition pd(std::move(bags));
  pd.reduce();
  return pd;
}

}  // namespace nav::decomp
