// tree_decomposition_builders.hpp — tree-decomposition constructions for the
// *treeshape* side of Definition 2.
//
// The paper defines shape for both tree- and path-decompositions (ts(G) and
// ps(G)) but Theorem 2 uses path decompositions: the level hierarchy of the
// matrix A addresses bags along a line. The gap matters: a tree T has
// ts(T) = 1 (the edge-bag decomposition below) while ps(T) can be Θ(log n)
// (e.g. complete binary trees, whose pathwidth is Θ(log n)). The library
// exposes both so the E9 bench can report the gap.
#pragma once

#include "decomposition/decomposition.hpp"

namespace nav::decomp {

/// Edge-bag tree decomposition of a tree: one bag {v, parent(v)} per
/// non-root node, bag of v linked to the bag of parent(v) (children of the
/// root are chained through the first such bag). Width 1, length 1 — hence
/// shape 1, witnessing ts(tree) = 1. Throws if g is not a tree.
[[nodiscard]] TreeDecomposition tree_edge_decomposition(const Graph& g);

/// Single-bag tree decomposition (any graph) — the trivial upper bound
/// ts(G) <= min(n-1, diam(G)).
[[nodiscard]] TreeDecomposition trivial_tree_decomposition(const Graph& g);

}  // namespace nav::decomp
