// bench_e4_labelsize.cpp — Experiment E4: Theorem 3's label-size lower bound.
//
// Claim (Theorem 3): any matrix scheme on the n-node path using labels of
// eps·log n bits (i.e. k = n^eps distinct labels) has greedy diameter
// Omega(n^beta) for every beta < (1-eps)/3: with few labels, some
// Theta(n^{1-eps'}) interval contains only popular labels and therefore sees
// no expected internal shortcut.
//
// Instantiation: the natural best-effort scheme under that budget — the
// Theorem 2 matrix (A+U)/2 over a k-label universe with contiguous block
// labeling. Expected shape: the fitted exponent *increases* as eps decreases
// (eps=1 recovers the polylog scheme; eps=0 collapses to one label, i.e.
// an essentially uniform scheme at ~0.5).
#include "harness.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e4", "e4_labelsize",
                   "E4: Theorem 3 — small label alphabets reintroduce n^beta",
                   "k = n^eps labels on the path => greedy diameter "
                   "Omega(n^beta) for all beta < (1-eps)/3",
                   argc, argv);
  h.group_by({"eps", "n"});

  const unsigned hi = h.quick() ? 12 : 16;
  const double epsilons[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  Table fits({"eps", "fitted exponent", "R^2", "Thm 3 floor (1-eps)/3",
              "greedy diam @ max n"});
  bool any_eps_ran = false;
  for (const double eps : epsilons) {
    if (!h.section("E4: eps = " + Table::num(eps, 2))) continue;
    any_eps_ran = true;
    Table table({"eps", "n", "k=n^eps", "greedy diam (max pair)", "ci95"});
    std::vector<double> ns, steps;
    for (unsigned e = 8; e <= hi; ++e) {
      const graph::NodeId n = graph::NodeId{1} << e;
      const auto g = graph::make_path(n);
      const auto k = core::label_budget(n, eps);
      const auto scheme = core::make_restricted_label_scheme(g, k);
      graph::TargetDistanceCache oracle(g, 16);
      routing::TrialConfig trials;
      trials.num_pairs = 8;
      trials.resamples = 12;
      const auto est = routing::estimate_greedy_diameter(
          g, scheme.get(), oracle, trials, Rng(h.seed(0xE4) + e));
      table.add_row({Table::num(eps, 2), Table::integer(n), Table::integer(k),
                     Table::num(est.max_mean_steps, 1),
                     Table::num(est.max_ci_halfwidth, 1)});
      h.add_cell({{"eps", eps},
                  {"n", static_cast<std::uint64_t>(n)},
                  {"k", static_cast<std::uint64_t>(k)},
                  {"greedy_diameter", est.max_mean_steps},
                  {"ci95", est.max_ci_halfwidth}});
      ns.push_back(n);
      steps.push_back(est.max_mean_steps);
    }
    std::cout << table.to_ascii();
    const auto fit = fit_power_law(ns, steps);
    std::cout << "exponent fit: " << Table::num(fit.slope, 3) << "\n";
    fits.add_row({Table::num(eps, 2), Table::num(fit.slope, 3),
                  Table::num(fit.r_squared, 3),
                  Table::num((1.0 - eps) / 3.0, 3),
                  Table::num(steps.back(), 1)});
  }

  if (any_eps_ran && h.section("E4 summary: exponent vs label budget")) {
    std::cout << fits.to_ascii();
    std::cout
        << "PASS criteria: every fitted exponent sits at or above the Theorem 3\n"
           "floor (1-eps)/3 (the theorem is a lower bound; measured curves may\n"
           "be steeper), and at the largest size a bigger label budget is never\n"
           "worse beyond CI noise. Note the polylog payoff of large eps only\n"
           "separates from sqrt-n beyond n ~ 2^15 (the (1+log n)-slot hierarchy\n"
           "rows fire slowly), so small-n exponents cluster near 0.4-0.5 for\n"
           "every eps — exactly the constants-vs-asymptotics story the bound\n"
           "min{ps log^2 n, sqrt n} encodes.\n";
  }
  return h.finish();
}
