// bench_e8_kleinberg.cpp — Experiment E8: the Kleinberg baseline in context.
//
// The paper builds on Kleinberg's small-world model [13]: on a 2D torus the
// distance-harmonic scheme Pr(u->v) ∝ dist^{-alpha} is polylog-navigable
// exactly at alpha = 2 (the lattice dimension), degrading polynomially on
// both sides — the classic U-shaped curve. This bench regenerates the curve
// and places the paper's universal schemes on it: uniform (= alpha 0) and
// the ball scheme, which needs no tuned exponent at all.
#include "harness.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e8", "e8_kleinberg",
                   "E8: Kleinberg alpha-sweep on the 2D torus",
                   "greedy routing is polylog exactly at alpha = 2; the ball "
                   "scheme is competitive without knowing the dimension",
                   argc, argv);
  h.group_by({"scheme", "n"});

  const std::vector<graph::NodeId> sides =
      h.quick() ? std::vector<graph::NodeId>{32, 64}
                : std::vector<graph::NodeId>{32, 64, 128, 256, 512};
  const double alphas[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};

  for (const auto side : sides) {
    const auto n_nodes = static_cast<std::uint64_t>(side) * side;
    if (!h.section("E8: torus side " + Table::integer(side) + " (n = " +
                   Table::integer(n_nodes) + ")"))
      continue;
    api::EngineOptions options;
    options.cache_capacity = 16;
    api::NavigationEngine engine(graph::make_torus2d(side, side), options);
    routing::TrialConfig trials;
    trials.num_pairs = 10;
    trials.resamples = 12;

    Table table({"scheme", "greedy diam (est)", "ci95", "mean"});
    auto run = [&](core::SchemePtr scheme) {
      engine.use_scheme(std::move(scheme));
      const auto est =
          engine.estimate_diameter(trials, Rng(h.seed(0xE8) ^ side));
      table.add_row({engine.scheme_spec(),
                     Table::num(est.max_mean_steps, 1),
                     Table::num(est.max_ci_halfwidth, 1),
                     Table::num(est.overall_mean_steps, 1)});
      h.add_cell({{"scheme", engine.scheme_spec()},
                  {"side", static_cast<std::uint64_t>(side)},
                  {"n", n_nodes},
                  {"greedy_diameter", est.max_mean_steps},
                  {"ci95", est.max_ci_halfwidth},
                  {"mean_steps", est.overall_mean_steps}});
      return est.max_mean_steps;
    };

    double best_alpha = -1.0, best_steps = 1e18;
    for (const double alpha : alphas) {
      const double steps =
          run(std::make_unique<core::TorusKleinbergScheme>(side, alpha));
      if (steps < best_steps) {
        best_steps = steps;
        best_alpha = alpha;
      }
    }
    run(std::make_unique<core::UniformScheme>(engine.graph()));
    run(std::make_unique<core::BallScheme>(engine.graph()));
    std::cout << table.to_ascii();
    std::cout << "best alpha at this size: " << Table::num(best_alpha, 1)
              << "\n";
    h.add_cell({{"side", static_cast<std::uint64_t>(side)},
                {"n", n_nodes},
                {"best_alpha", best_alpha}});
  }

  if (h.section("E8 summary")) {
    std::cout
        << "PASS criteria: each size shows the U-shape with a catastrophic\n"
           "right flank (alpha >= 2.5 blows up polynomially), and the optimal\n"
           "alpha drifts monotonically upward toward the asymptotic optimum 2\n"
           "as n grows (0 -> 0.5 -> 1 -> 1.5 -> ... ) — the classic finite-size\n"
           "effect reported for Kleinberg grids (cf. Martel-Nguyen, PODC'04).\n"
           "Uniform matches alpha=0 closely; the untuned ball scheme stays\n"
           "within a small factor of the tuned optimum at every size.\n";
  }
  return h.finish();
}
