// bench_e7_ablation.cpp — Experiment E7: ablating the constructions.
//
// Three ablations that probe WHY the paper's constructions are built the way
// they are:
//  (a) M = (A+U)/2 vs its halves (Thm 2): A alone loses the universal sqrt-n
//      fallback; U alone loses the polylog hierarchy. Plus the strict
//      label-class U variant and a random labeling (destroys the hierarchy's
//      meaning — the decomposition labeling is what carries the structure).
//  (b) the ball scheme's k-mixture vs a single fixed radius 2^k (Thm 4): any
//      fixed k is tuned to one distance scale; the uniform mixture over
//      log n scales is what makes the scheme distance-oblivious.
//  (c) the rank-based scheme as an external comparator.
#include "harness.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e7", "e7_ablation",
                   "E7: ablations — why (A+U)/2, why the k-mixture, why L",
                   "removing any ingredient of either construction costs "
                   "polynomial factors somewhere",
                   argc, argv);
  h.group_by({"scheme", "n"});

  const unsigned hi = h.quick() ? 12 : 14;

  // (a) ML halves and labelings on the path (ps = 1: hierarchy shines).
  if (h.section("E7a: ML ingredients on path")) {
    h.run_and_print(api::Experiment::on("path")
                        .sizes(bench::pow2_sizes(9, hi))
                        .schemes({"ml", "ml-A-only", "ml-U-only",
                                  "ml-labelU", "ml-random-label"})
                        .pairs(8)
                        .resamples(10)
                        .seed(h.seed(0xE7A)));
    std::cout
        << "expectation: ml-A-only matches ml on the path (the hierarchy\n"
           "does the work when ps=1); ml-U-only ~ uniform (~n^0.5);\n"
           "ml-random-label loses the polylog behaviour (labeling carries\n"
           "the structure, Thm 1 says no labeling-free matrix can win).\n";
  }

  // (a') same on a tree to show A-only remains fine with proper L.
  if (h.section("E7a': ML ingredients on random trees")) {
    h.run_and_print(api::Experiment::on("random_tree")
                        .sizes(bench::pow2_sizes(9, hi))
                        .schemes({"ml", "ml-A-only", "ml-U-only"})
                        .pairs(8)
                        .resamples(10)
                        .seed(h.seed(0xE7B)));
  }

  // (b) ball mixture vs fixed radii on the path.
  if (h.section("E7b: ball k-mixture vs fixed k on path")) {
    const unsigned e = h.quick() ? 12 : 15;
    const graph::NodeId n = graph::NodeId{1} << e;
    const auto log_n = e;
    h.run_and_print(
        api::Experiment::on("path")
            .sizes({n})
            .schemes({"ball", "ball-fixed:" + std::to_string(log_n / 3),
                      "ball-fixed:" + std::to_string(log_n / 2),
                      "ball-fixed:" + std::to_string(2 * log_n / 3),
                      "ball-fixed:" + std::to_string(log_n)})
            .pairs(8)
            .resamples(10)
            .seed(h.seed(0xE7C)));
    std::cout
        << "expectation: small fixed k ~ slow long-range progress; k = log n\n"
           "~ uniform (~sqrt n); the mixture is competitive with the best\n"
           "fixed k without knowing the distance scale in advance.\n";
  }

  // (c) literature comparators on the path (moderate n: BFS sampling).
  if (h.section("E7c: distance/density-adaptive comparators")) {
    h.run_and_print(api::Experiment::on("path")
                        .sizes(bench::pow2_sizes(9, h.quick() ? 11 : 12))
                        .schemes({"ball", "rank", "kleinberg:1.0",
                                  "growth"})
                        .pairs(6)
                        .resamples(8)
                        .seed(h.seed(0xE7D)));
    std::cout
        << "expectation: on the 1-D path, rank, harmonic alpha=1, and the\n"
           "ball-harmonic 'growth' scheme ([6,21]'s bounded-growth recipe)\n"
           "are all polylog — beating ball's n^{1/3} on this bounded-growth\n"
           "instance. The paper's point: those guarantees are class-specific\n"
           "(bounded growth), while the ball scheme's ~n^{1/3} holds on\n"
           "EVERY graph. Class knowledge buys polylog; universality costs\n"
           "n^{1/3}.\n";
  }

  if (h.section("E7 summary")) {
    std::cout << "PASS criteria: (a) ml-random-label and ml-U-only exponents\n"
                 ">= 0.4 on the path while ml/ml-A-only stay polylog-flat;\n"
                 "(b) the mixture is within 2x of the best fixed k and far\n"
                 "from the worst; (c) informational.\n";
  }
  return h.finish();
}
