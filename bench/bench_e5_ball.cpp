// bench_e5_ball.cpp — Experiment E5 (HEADLINE): Theorem 4's Õ(n^{1/3}) scheme.
//
// Claim (Theorem 4): the a-posteriori ball scheme — k uniform in
// {1..ceil(log n)}, contact uniform in B(u, 2^k) — achieves greedy diameter
// Õ(n^{1/3}) on EVERY graph, overcoming the sqrt(n) barrier that binds all
// name-independent matrix schemes (Theorem 1) and the uniform scheme.
//
// Expected shape:
//   * on diameter-Theta(n) families (path, cycle, caterpillar): ball exponent
//     ~1/3 (+ polylog drift) vs uniform's ~0.5, with a visible crossover;
//   * on every other family the ball scheme stays within polylog of the best
//     (universality) — it never loses badly anywhere.
#include "harness.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e5", "e5_ball",
                   "E5: Theorem 4 — the ball scheme breaks the sqrt(n) "
                   "barrier",
                   "greedy diameter of the ball scheme is ~O(n^{1/3}) on "
                   "every graph; uniform is Theta(sqrt n) on the path",
                   argc, argv);
  h.group_by({"scheme", "family"});

  const unsigned hi = h.quick() ? 13 : 17;

  // Part 1: the barrier families, where the separation is visible.
  for (const auto* family : {"path", "cycle", "caterpillar"}) {
    if (!h.section(std::string("E5: uniform vs ml vs ball on ") + family))
      continue;
    const auto result =
        h.run_and_print(api::Experiment::on(family)
                            .sizes(bench::pow2_sizes(10, hi))
                            .schemes({"uniform", "ml", "ball"})
                            .pairs(8)
                            .resamples(12)
                            .seed(h.seed(0xE5)));

    // Crossover report: the first size where ball strictly beats uniform.
    graph::NodeId crossover = 0;
    for (const auto& ball_row : result.cells) {
      if (ball_row.scheme != "ball") continue;
      for (const auto& uniform_row : result.cells) {
        if (uniform_row.scheme == "uniform" &&
            uniform_row.n_actual == ball_row.n_actual &&
            ball_row.greedy_diameter < uniform_row.greedy_diameter &&
            crossover == 0) {
          crossover = ball_row.n_actual;
        }
      }
    }
    std::cout << "first size with ball < uniform: "
              << (crossover ? Table::integer(crossover) : std::string("none"))
              << "\n";
  }

  // Part 2: universality — the ball scheme on structurally different
  // families. The n^{1/3} bound must hold everywhere (it is a max, not an
  // average, so staying below c·n^{1/3}·log n on all families is the claim).
  for (const auto* family : {"torus2d", "random_regular", "comb",
                             "ring_of_cliques", "lollipop"}) {
    if (!h.section(std::string("E5u: ball universality on ") + family))
      continue;
    const auto result =
        h.run_and_print(api::Experiment::on(family)
                            .sizes(bench::pow2_sizes(10, h.quick() ? 12 : 15))
                            .schemes({"uniform", "ball"})
                            .pairs(8)
                            .resamples(10)
                            .seed(h.seed(0xE5u)));
    for (const auto& r : result.cells) {
      if (r.scheme != "ball") continue;
      const double n = static_cast<double>(r.n_actual);
      const double budget = 4.0 * std::cbrt(n) * std::log2(n);
      if (r.greedy_diameter > budget) {
        std::cout << "WARNING: ball exceeded 4 n^{1/3} log n at n = "
                  << r.n_actual << " (" << r.greedy_diameter << " > " << budget
                  << ")\n";
      }
    }
  }

  if (h.section("E5 summary")) {
    std::cout
        << "PASS criteria: on path/cycle/caterpillar the ball exponent lands in\n"
           "[0.28, 0.45] and uniform in [0.40, 0.60], ball < uniform from some\n"
           "crossover size on; on every universality family the ball scheme\n"
           "stays below 4 n^{1/3} log2 n (no WARNING lines above).\n";
  }
  return h.finish();
}
