// bench_e10_lookahead.cpp — Experiment E10 (extension): knowledge vs
// distribution.
//
// The paper's reference [16] ("Know Thy Neighbor's Neighbor", Manku-Naor-
// Wieder) shows that letting nodes see their neighbours' long-range links
// speeds up greedy routing. Theorem 4 instead changes the *distribution* of
// the links. This bench puts the two levers side by side on the sqrt-barrier
// families:
//   plain greedy + uniform      ~ sqrt(n)          (the barrier)
//   NoN lookahead + uniform     ~ sqrt(n)/const    (knowledge alone: the
//                                 candidate pool per step grows by ~deg,
//                                 a constant on bounded-degree graphs)
//   plain greedy + ball         ~ n^{1/3} polylog  (distribution alone)
//   NoN lookahead + ball        best of both
// Expected: lookahead gives a constant-factor win at fixed degree, while the
// ball scheme changes the exponent — they compose, but only the distribution
// breaks the barrier.
#include "bench_common.hpp"

#include "core/ball_scheme.hpp"
#include "graph/diameter.hpp"
#include "core/uniform_scheme.hpp"
#include "routing/lookahead_router.hpp"
#include "runtime/stats.hpp"

namespace {

using namespace nav;

struct Cell {
  double mean = 0.0;
  double ci = 0.0;
};

Cell measure(const graph::Graph& g, const graph::DistanceOracle& oracle,
             const core::AugmentationScheme& scheme, bool lookahead,
             graph::NodeId s, graph::NodeId t, int resamples, Rng rng) {
  routing::GreedyRouter plain(g, oracle);
  routing::LookaheadRouter non(g, oracle);
  RunningStats stats;
  for (int r = 0; r < resamples; ++r) {
    Rng trial = rng.child(static_cast<std::uint64_t>(r));
    // Memoised lazy contacts: identical in distribution to an eager draw of
    // all n links, but only the nodes a route actually inspects pay for
    // sampling (the ball scheme's BFS sampling would otherwise dominate).
    core::MemoContacts contacts(scheme, trial);
    const auto result =
        lookahead
            ? non.route(s, t,
                        [&contacts](graph::NodeId u) { return contacts(u); })
            : plain.route(s, t, &scheme, trial);
    stats.add(result.steps);
  }
  return {stats.mean(), stats.ci_halfwidth()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::banner("E10 (extension): neighbour-of-neighbour lookahead vs the "
                "ball distribution",
                "local knowledge buys a constant factor; the Theorem 4 "
                "distribution changes the exponent");

  const unsigned hi = opt.quick ? 13 : 16;
  const int resamples = opt.quick ? 8 : 12;

  for (const auto* family : {"path", "torus2d"}) {
    bench::section(std::string("E10: ") + family);
    Table table({"n", "uniform", "uniform+NoN", "ball", "ball+NoN"});
    std::vector<double> ns, u_plain, u_non, b_plain, b_non;
    for (unsigned e = 10; e <= hi; ++e) {
      Rng rng(0xE10 + e);
      const auto g = graph::family(family).make(graph::NodeId{1} << e, rng);
      graph::TargetDistanceCache oracle(g, 4);
      const auto pp = graph::peripheral_pair(g);
      core::UniformScheme uniform(g);
      core::BallScheme ball(g);

      const auto cell_up = measure(g, oracle, uniform, false, pp.a, pp.b,
                                   resamples, rng.child(1));
      const auto cell_un = measure(g, oracle, uniform, true, pp.a, pp.b,
                                   resamples, rng.child(2));
      const auto cell_bp = measure(g, oracle, ball, false, pp.a, pp.b,
                                   resamples, rng.child(3));
      const auto cell_bn = measure(g, oracle, ball, true, pp.a, pp.b,
                                   resamples, rng.child(4));
      table.add_row({Table::integer(g.num_nodes()),
                     Table::with_ci(cell_up.mean, cell_up.ci, 1),
                     Table::with_ci(cell_un.mean, cell_un.ci, 1),
                     Table::with_ci(cell_bp.mean, cell_bp.ci, 1),
                     Table::with_ci(cell_bn.mean, cell_bn.ci, 1)});
      ns.push_back(g.num_nodes());
      u_plain.push_back(cell_up.mean);
      u_non.push_back(cell_un.mean);
      b_plain.push_back(cell_bp.mean);
      b_non.push_back(cell_bn.mean);
    }
    std::cout << table.to_ascii();
    Table fits({"configuration", "exponent"});
    fits.add_row({"uniform", Table::num(fit_power_law(ns, u_plain).slope, 3)});
    fits.add_row({"uniform+NoN", Table::num(fit_power_law(ns, u_non).slope, 3)});
    fits.add_row({"ball", Table::num(fit_power_law(ns, b_plain).slope, 3)});
    fits.add_row({"ball+NoN", Table::num(fit_power_law(ns, b_non).slope, 3)});
    std::cout << fits.to_ascii();
  }

  bench::section("E10 summary");
  std::cout
      << "PASS criteria: on the path, uniform+NoN improves uniform by a\n"
         "roughly n-independent factor (same ~0.5 exponent), while ball\n"
         "changes the exponent itself (~1/3); ball+NoN <= ball everywhere.\n"
         "Knowledge composes with, but does not substitute for, the\n"
         "universal Õ(n^{1/3}) distribution of Theorem 4.\n";
  return 0;
}
