// bench_e10_lookahead.cpp — Experiment E10 (extension): knowledge vs
// distribution.
//
// The paper's reference [16] ("Know Thy Neighbor's Neighbor", Manku-Naor-
// Wieder) shows that letting nodes see their neighbours' long-range links
// speeds up greedy routing. Theorem 4 instead changes the *distribution* of
// the links. This bench puts the two levers side by side on the sqrt-barrier
// families as a scheme × router grid:
//   greedy      × uniform   ~ sqrt(n)          (the barrier)
//   lookahead:1 × uniform   ~ sqrt(n)/const    (knowledge alone: the
//                             candidate pool per step grows by ~deg,
//                             a constant on bounded-degree graphs)
//   greedy      × ball      ~ n^{1/3} polylog  (distribution alone)
//   lookahead:1 × ball      best of both
// Expected: lookahead gives a constant-factor win at fixed degree, while the
// ball scheme changes the exponent — they compose, but only the distribution
// breaks the barrier.
//
// Since the router registry this is a declarative grid over both axes; the
// previous revision hand-rolled the same comparison with two router objects
// and a manual table.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e10", "e10_lookahead",
                   "E10 (extension): neighbour-of-neighbour lookahead vs the "
                   "ball distribution",
                   "local knowledge buys a constant factor; the Theorem 4 "
                   "distribution changes the exponent",
                   argc, argv);
  h.group_by({"scheme", "router"});

  const unsigned hi = h.quick() ? 13 : 16;
  const std::size_t resamples = h.quick() ? 8 : 12;

  for (const auto* family : {"path", "torus2d"}) {
    if (!h.section(std::string("E10: ") + family)) continue;
    const auto result =
        h.run_and_print(api::Experiment::on(family)
                            .sizes(bench::pow2_sizes(10, hi))
                            .schemes({"uniform", "ball"})
                            .routers({"greedy", "lookahead:1"})
                            .pairs(2)
                            .resamples(resamples)
                            .seed(h.seed(0xE10)));

    // Constant-factor view: lookahead's win over plain greedy per scheme at
    // the largest size (the fits table above gives the exponent view).
    for (const auto* scheme : {"uniform", "ball"}) {
      const api::CellResult* greedy_cell = nullptr;
      const api::CellResult* non_cell = nullptr;
      for (const auto& cell : result.cells) {
        if (cell.scheme != scheme ||
            cell.n_actual != result.cells.back().n_actual)
          continue;
        if (cell.router == "greedy") greedy_cell = &cell;
        if (cell.router == "lookahead:1") non_cell = &cell;
      }
      if (greedy_cell && non_cell && non_cell->greedy_diameter > 0.0) {
        std::cout << scheme << ": greedy/lookahead ratio at n = "
                  << Table::integer(greedy_cell->n_actual) << ": "
                  << Table::num(greedy_cell->greedy_diameter /
                                    non_cell->greedy_diameter,
                                2)
                  << "x\n";
      }
    }
  }

  if (h.section("E10 summary")) {
    std::cout
        << "PASS criteria: on the path, uniform x lookahead:1 improves plain\n"
           "greedy by a roughly n-independent factor (same ~0.5 exponent in\n"
           "the fits table), while ball changes the exponent itself (~1/3);\n"
           "ball x lookahead:1 <= ball everywhere. Knowledge composes with,\n"
           "but does not substitute for, the universal ~O(n^{1/3})\n"
           "distribution of Theorem 4.\n";
  }
  return h.finish();
}
