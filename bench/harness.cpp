// harness.cpp — shared bench CLI, section filtering, and trajectory-v1
// emission. See harness.hpp for the contract.
#include "harness.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>

namespace nav::bench {
namespace {

constexpr const char* kUsage = R"(shared bench flags:
  --quick              smaller grids, for smoke runs and golden tests
  --csv                write sweep_<family>.csv per sweep
  --jsonl              write sweep/bench .jsonl streams plus the
                       nav-bench-trajectory-v1 documents BENCH_<id>.json and
                       a refreshed merged BENCH_all.json
  --out <dir>          directory for every produced file (default: .)
  --seed <n>           perturb every random stream of the bench (the bench's
                       built-in seeds are xor-mixed with splitmix64(n))
  --section <substr>   run only sections whose title contains <substr>
                       (repeatable; default: all sections)
  --list-sections      print section titles without running them
  --help               this text
)";

/// Wall-clock-dependent metric names: listed as "loose_metrics" in the
/// trajectory document so golden tests mask them and compare_bench.py
/// thresholds them loosely (or ignores them) instead of strictly.
const char* const kLooseMetrics[] = {
    "seconds",         "sec",
    "routes_per_sec",  "pairs_per_sec",
    "speedup",         "sojourn_ms_p50",
    "sojourn_ms_p95",  "sojourn_ms_p99",
    "peak_queued_pairs", "blocked_submits",
    "real_time_ns",    "cpu_time_ns",
    "items_per_second", "bytes_per_second",
    "nodes_per_sec",
};

/// Numeric fields that identify a cell (grid coordinates) rather than
/// measure it; string-valued fields are always keys.
const char* const kNumericKeyFields[] = {
    "n",     "n_requested", "side",    "pairs",      "targets",
    "eps",   "k",           "alpha",   "batches",    "batch_size",
    "cache_capacity",
};

bool contains(const char* const* first, const char* const* last,
              const std::string& name) {
  return std::find_if(first, last, [&](const char* s) {
           return name == s;
         }) != last;
}

bool is_loose_metric(const std::string& name) {
  return contains(std::begin(kLooseMetrics), std::end(kLooseMetrics), name);
}

bool is_key_field(const api::Field& field) {
  if (std::holds_alternative<std::string>(field.value)) return true;
  return contains(std::begin(kNumericKeyFields), std::end(kNumericKeyFields),
                  field.key);
}

void push_unique(std::vector<std::string>& names, const std::string& name) {
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    names.push_back(name);
  }
}

std::string json_string_array(const std::vector<std::string>& names) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i ? ", " : "") << '"' << names[i] << '"';
  }
  out << "]";
  return out.str();
}

}  // namespace

BenchOptions parse_options(int argc, char** argv, bool allow_unknown) {
  BenchOptions opt;
  const auto take_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << flag << " needs a value\n" << kUsage;
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      opt.jsonl = true;
    } else if (std::strcmp(arg, "--list-sections") == 0) {
      opt.list_sections = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      opt.out_dir = take_value(i, "--out");
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.seed = std::strtoull(take_value(i, "--seed"), nullptr, 0);
      opt.seed_set = true;
    } else if (std::strcmp(arg, "--section") == 0) {
      opt.section_filters.emplace_back(take_value(i, "--section"));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::cout << kUsage;
      std::exit(0);
    } else if (!allow_unknown) {
      std::cerr << "error: unknown flag " << arg << "\n" << kUsage;
      std::exit(2);
    }
  }
  return opt;
}

std::vector<graph::NodeId> pow2_sizes(unsigned lo, unsigned hi) {
  std::vector<graph::NodeId> sizes;
  for (unsigned e = lo; e <= hi; ++e) sizes.push_back(graph::NodeId{1} << e);
  return sizes;
}

Harness::Harness(std::string id, std::string name, const std::string& title,
                 const std::string& claim, int argc, char** argv,
                 bool allow_unknown_flags)
    : id_(std::move(id)),
      name_(std::move(name)),
      opt_(parse_options(argc, argv, allow_unknown_flags)) {
  if (opt_.out_dir != ".") {
    std::filesystem::create_directories(opt_.out_dir);
  }
  if (!title.empty()) {
    std::cout << "========================================================\n";
    std::cout << title << "\n";
    std::cout << "claim under test: " << claim << "\n";
    std::cout << "========================================================\n";
  }
  if (opt_.list_sections) std::cout << "sections:\n";
}

Harness::~Harness() { finish(); }

std::uint64_t Harness::seed(std::uint64_t fallback) const noexcept {
  if (!opt_.seed_set) return fallback;
  std::uint64_t state = opt_.seed;
  return fallback ^ splitmix64_next(state);
}

bool Harness::section(const std::string& title) {
  if (opt_.list_sections) {
    std::cout << "  " << title << "\n";
    return false;
  }
  if (!opt_.section_filters.empty()) {
    const bool selected = std::any_of(
        opt_.section_filters.begin(), opt_.section_filters.end(),
        [&](const std::string& f) { return title.find(f) != std::string::npos; });
    if (!selected) return false;
  }
  current_section_ = title;
  std::cout << "\n==== " << title << " ====\n";
  return true;
}

void Harness::add_cell(api::Record cell) {
  if (opt_.jsonl) {
    if (!bench_sink_) {
      bench_jsonl_.open(out_path("bench_" + name_ + ".jsonl"));
      if (bench_jsonl_) {
        bench_sink_ = std::make_unique<api::JsonLinesSink>(bench_jsonl_);
      } else {
        std::cerr << "warning: cannot open bench_" << name_
                  << ".jsonl — skipping bench jsonl output\n";
      }
    }
    if (bench_sink_) bench_sink_->write(cell);
  }
  // The trajectory copy carries the section so cell keys stay unique even
  // when two sections measure the same grid coordinates.
  api::Record traj;
  traj.reserve(cell.size() + 1);
  if (!current_section_.empty()) traj.push_back({"section", current_section_});
  for (auto& field : cell) traj.push_back(std::move(field));
  cells_.push_back(std::move(traj));
}

api::ExperimentResult Harness::run_and_print(api::Experiment experiment) {
  Timer timer;
  const std::string stem = "sweep_" + experiment.family();
  std::ofstream jsonl_stream;
  std::unique_ptr<api::JsonLinesSink> jsonl;
  bool jsonl_open = false;
  if (opt_.jsonl) {
    jsonl_stream.open(out_path(stem + ".jsonl"));
    if (jsonl_stream) {
      jsonl = std::make_unique<api::JsonLinesSink>(jsonl_stream);
      experiment.stream_to(*jsonl);
      jsonl_open = true;
    } else {
      std::cerr << "warning: cannot open " << stem
                << ".jsonl — skipping jsonl output\n";
    }
  }
  auto result = experiment.run();
  std::cout << result.table().to_ascii();
  std::cout << "exponent fits (greedy diameter ~ n^slope):\n"
            << result.fit_table().to_ascii();
  std::cout << "[" << experiment.family() << " sweep took "
            << Table::num(timer.seconds(), 1) << "s]\n";
  if (opt_.csv) {
    result.table().save_csv(out_path(stem + ".csv"));
    std::cout << "csv written: " << stem << ".csv\n";
  }
  if (jsonl_open) std::cout << "jsonl written: " << stem << ".jsonl\n";

  for (const auto& cell : result.cells) {
    api::Record traj;
    const auto record = cell.record();
    traj.reserve(record.size() + 1);
    if (!current_section_.empty()) {
      traj.push_back({"section", current_section_});
    }
    for (const auto& field : record) traj.push_back(field);
    cells_.push_back(std::move(traj));
  }
  return result;
}

void Harness::group_by(std::vector<std::string> fields) {
  group_by_ = std::move(fields);
}

int Harness::finish() {
  if (finished_) return 0;
  finished_ = true;
  if (bench_sink_) {
    bench_sink_->flush();
    bench_jsonl_.close();
    std::cout << "jsonl written: bench_" << name_ << ".jsonl\n";
  }
  if (opt_.jsonl && !opt_.list_sections) {
    write_trajectory();
    write_merged();
  }
  return 0;
}

std::string Harness::out_path(const std::string& file_name) const {
  // The default directory keeps bare file names (they appear inside
  // golden-pinned records, e.g. E12's trace:<path> workload spec).
  if (opt_.out_dir.empty() || opt_.out_dir == ".") return file_name;
  return (std::filesystem::path(opt_.out_dir) / file_name).string();
}

void Harness::write_trajectory() {
  // Classify every field seen across the recorded cells, preserving
  // first-seen order: string-valued fields and grid-coordinate numerics are
  // keys; every other numeric is a metric, loose when wall-clock-dependent.
  std::vector<std::string> key_fields, metrics, loose;
  std::vector<std::string> string_keys;
  for (const auto& cell : cells_) {
    for (const auto& field : cell) {
      if (is_key_field(field)) {
        push_unique(key_fields, field.key);
        if (std::holds_alternative<std::string>(field.value) &&
            field.key != "section") {
          push_unique(string_keys, field.key);
        }
      } else if (is_loose_metric(field.key)) {
        push_unique(loose, field.key);
      } else {
        push_unique(metrics, field.key);
      }
    }
  }
  auto group_by = group_by_;
  if (group_by.empty()) {
    for (const auto& key : string_keys) {
      if (group_by.size() < 2) group_by.push_back(key);
    }
  }

  const std::string path = out_path("BENCH_" + id_ + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path
              << " — skipping trajectory output\n";
    return;
  }
  out << "{\n"
      << "  \"schema\": \"nav-bench-trajectory-v1\",\n"
      << "  \"bench\": \"" << name_ << "\",\n"
      << "  \"id\": \"" << id_ << "\",\n"
      << "  \"quick\": " << (opt_.quick ? "true" : "false") << ",\n"
      << "  \"group_by\": " << json_string_array(group_by) << ",\n"
      << "  \"key_fields\": " << json_string_array(key_fields) << ",\n"
      << "  \"metrics\": " << json_string_array(metrics) << ",\n"
      << "  \"loose_metrics\": " << json_string_array(loose) << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out << "    " << api::to_json_line(cells_[i])
        << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "trajectory written: BENCH_" << id_ << ".json\n";
}

void Harness::write_merged() {
  // Re-merge every per-bench document present in the output directory, so
  // running the bench suite in one directory accumulates BENCH_all.json
  // incrementally (each binary refreshes it on exit).
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opt_.out_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 || file.size() < 11 ||
        file.substr(file.size() - 5) != ".json" || file == "BENCH_all.json") {
      continue;
    }
    names.push_back(file);
  }
  if (ec) {
    std::cerr << "warning: cannot scan " << opt_.out_dir << ": "
              << ec.message() << "\n";
    return;
  }
  std::sort(names.begin(), names.end());

  std::vector<std::string> documents;
  for (const auto& file : names) {
    std::ifstream in(out_path(file));
    std::ostringstream text;
    text << in.rdbuf();
    std::string doc = text.str();
    // Only fold in documents this schema wrote (a stray BENCH_*.json from
    // another tool must not corrupt the merge).
    if (doc.find("\"schema\": \"nav-bench-trajectory-v1\"") ==
            std::string::npos ||
        doc.find("\"merged\": true") != std::string::npos) {
      continue;
    }
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    documents.push_back(std::move(doc));
  }
  if (documents.empty()) return;

  const std::string path = out_path("BENCH_all.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " — skipping merge\n";
    return;
  }
  out << "{\n"
      << "  \"schema\": \"nav-bench-trajectory-v1\",\n"
      << "  \"merged\": true,\n"
      << "  \"benches\": [\n";
  for (std::size_t i = 0; i < documents.size(); ++i) {
    out << documents[i] << (i + 1 < documents.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "merged trajectory written: BENCH_all.json ("
            << documents.size() << " benches)\n";
}

}  // namespace nav::bench
