// harness.cpp — shared bench CLI, section filtering, and trajectory-v1
// emission. See harness.hpp for the contract.
#include "harness.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>

namespace nav::bench {
namespace {

constexpr const char* kUsage = R"(shared bench flags:
  --quick              smaller grids, for smoke runs and golden tests
  --csv                write sweep_<family>.csv per sweep
  --jsonl              write sweep/bench .jsonl streams plus the
                       nav-bench-trajectory-v1 documents BENCH_<id>.json and
                       a refreshed merged BENCH_all.json
  --out <dir>          directory for every produced file (default: .)
  --seed <n>           perturb every random stream of the bench (the bench's
                       built-in seeds are xor-mixed with splitmix64(n))
  --section <substr>   run only sections whose title contains <substr>
                       (repeatable; default: all sections)
  --list-sections      print section titles without running them
  --help               this text
)";

}  // namespace

BenchOptions parse_options(int argc, char** argv, bool allow_unknown) {
  BenchOptions opt;
  const auto take_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << flag << " needs a value\n" << kUsage;
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      opt.jsonl = true;
    } else if (std::strcmp(arg, "--list-sections") == 0) {
      opt.list_sections = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      opt.out_dir = take_value(i, "--out");
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.seed = std::strtoull(take_value(i, "--seed"), nullptr, 0);
      opt.seed_set = true;
    } else if (std::strcmp(arg, "--section") == 0) {
      opt.section_filters.emplace_back(take_value(i, "--section"));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::cout << kUsage;
      std::exit(0);
    } else if (!allow_unknown) {
      std::cerr << "error: unknown flag " << arg << "\n" << kUsage;
      std::exit(2);
    }
  }
  return opt;
}

std::vector<graph::NodeId> pow2_sizes(unsigned lo, unsigned hi) {
  std::vector<graph::NodeId> sizes;
  for (unsigned e = lo; e <= hi; ++e) sizes.push_back(graph::NodeId{1} << e);
  return sizes;
}

Harness::Harness(std::string id, std::string name, const std::string& title,
                 const std::string& claim, int argc, char** argv,
                 bool allow_unknown_flags)
    : id_(std::move(id)),
      name_(std::move(name)),
      opt_(parse_options(argc, argv, allow_unknown_flags)),
      traj_(id_, name_, opt_.quick, opt_.out_dir) {
  if (opt_.out_dir != ".") {
    std::filesystem::create_directories(opt_.out_dir);
  }
  if (!title.empty()) {
    std::cout << "========================================================\n";
    std::cout << title << "\n";
    std::cout << "claim under test: " << claim << "\n";
    std::cout << "========================================================\n";
  }
  if (opt_.list_sections) std::cout << "sections:\n";
}

Harness::~Harness() { finish(); }

std::uint64_t Harness::seed(std::uint64_t fallback) const noexcept {
  if (!opt_.seed_set) return fallback;
  std::uint64_t state = opt_.seed;
  return fallback ^ splitmix64_next(state);
}

bool Harness::section(const std::string& title) {
  if (opt_.list_sections) {
    std::cout << "  " << title << "\n";
    return false;
  }
  if (!opt_.section_filters.empty()) {
    const bool selected = std::any_of(
        opt_.section_filters.begin(), opt_.section_filters.end(),
        [&](const std::string& f) { return title.find(f) != std::string::npos; });
    if (!selected) return false;
  }
  current_section_ = title;
  std::cout << "\n==== " << title << " ====\n";
  return true;
}

void Harness::add_cell(api::Record cell) {
  if (opt_.jsonl) {
    if (!bench_sink_) {
      bench_jsonl_.open(out_path("bench_" + name_ + ".jsonl"));
      if (bench_jsonl_) {
        bench_sink_ = std::make_unique<api::JsonLinesSink>(bench_jsonl_);
      } else {
        std::cerr << "warning: cannot open bench_" << name_
                  << ".jsonl — skipping bench jsonl output\n";
      }
    }
    if (bench_sink_) bench_sink_->write(cell);
  }
  // The trajectory copy carries the section so cell keys stay unique even
  // when two sections measure the same grid coordinates.
  traj_.add_cell(std::move(cell), current_section_);
}

void Harness::add_metrics_cell(const obs::MetricsSnapshot& snapshot,
                               api::Record keys,
                               const std::string& name_prefix) {
  const auto field_name = [](const std::string& metric) {
    std::string out = "obs_" + metric;
    std::replace(out.begin(), out.end(), '.', '_');
    return out;
  };
  const auto selected = [&](const std::string& metric) {
    return name_prefix.empty() || metric.starts_with(name_prefix);
  };
  api::Record cell = std::move(keys);
  for (const auto& c : snapshot.counters) {
    if (selected(c.name)) {
      cell.push_back({field_name(c.name), static_cast<double>(c.value)});
    }
  }
  for (const auto& g : snapshot.gauges) {
    if (selected(g.name)) {
      cell.push_back({field_name(g.name), static_cast<double>(g.value)});
    }
  }
  for (const auto& hist : snapshot.histograms) {
    if (selected(hist.name)) {
      cell.push_back(
          {field_name(hist.name) + "_count", static_cast<double>(hist.total())});
      cell.push_back({field_name(hist.name) + "_sum", hist.sum});
    }
  }
  add_cell(std::move(cell));
}

api::ExperimentResult Harness::run_and_print(api::Experiment experiment) {
  Timer timer;
  const std::string stem = "sweep_" + experiment.family();
  std::ofstream jsonl_stream;
  std::unique_ptr<api::JsonLinesSink> jsonl;
  bool jsonl_open = false;
  if (opt_.jsonl) {
    jsonl_stream.open(out_path(stem + ".jsonl"));
    if (jsonl_stream) {
      jsonl = std::make_unique<api::JsonLinesSink>(jsonl_stream);
      experiment.stream_to(*jsonl);
      jsonl_open = true;
    } else {
      std::cerr << "warning: cannot open " << stem
                << ".jsonl — skipping jsonl output\n";
    }
  }
  auto result = experiment.run();
  std::cout << result.table().to_ascii();
  std::cout << "exponent fits (greedy diameter ~ n^slope):\n"
            << result.fit_table().to_ascii();
  std::cout << "[" << experiment.family() << " sweep took "
            << Table::num(timer.seconds(), 1) << "s]\n";
  if (opt_.csv) {
    result.table().save_csv(out_path(stem + ".csv"));
    std::cout << "csv written: " << stem << ".csv\n";
  }
  if (jsonl_open) std::cout << "jsonl written: " << stem << ".jsonl\n";

  for (const auto& cell : result.cells) {
    traj_.add_cell(cell.record(), current_section_);
  }
  return result;
}

void Harness::group_by(std::vector<std::string> fields) {
  traj_.group_by(std::move(fields));
}

int Harness::finish() {
  if (finished_) return 0;
  finished_ = true;
  if (bench_sink_) {
    bench_sink_->flush();
    bench_jsonl_.close();
    std::cout << "jsonl written: bench_" << name_ << ".jsonl\n";
  }
  if (opt_.jsonl && !opt_.list_sections) {
    traj_.write_document();
    traj_.write_merged();
  }
  return 0;
}

std::string Harness::out_path(const std::string& file_name) const {
  return traj_.out_path(file_name);
}

}  // namespace nav::bench
