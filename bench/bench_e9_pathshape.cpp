// bench_e9_pathshape.cpp — Experiment E9: the pathshape parameter itself.
//
// Theorem 2's bound is driven by ps(G) = min over path decompositions of the
// per-bag min(width, length). This bench characterises the parameter:
//   (a) portfolio upper bounds vs the exact pathwidth reference on small
//       graphs (ps <= pw always; on cliques ps << pw);
//   (b) certified shape values across the full family zoo at working sizes —
//       the per-family inputs to Theorem 2's prediction;
//   (c) validity + gap statistics on random small instances.
#include "harness.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e9", "e9_pathshape",
                   "E9: the pathshape parameter (Definition 2)",
                   "shape = min(width, length) per bag; ps(G) <= pw(G); small "
                   "on paths/caterpillars/cliques/interval/permutation, "
                   "O(log n) on trees",
                   argc, argv);
  h.group_by({"family", "graph"});

  // (a) small graphs: portfolio vs exact pathwidth.
  if (h.section("E9a: portfolio shape vs exact pathwidth (small graphs)")) {
    struct Case {
      const char* name;
      graph::Graph g;
    };
    const Case cases[] = {
        {"path16", graph::make_path(16)},
        {"cycle16", graph::make_cycle(16)},
        {"K9", graph::make_complete(9)},
        {"star16", graph::make_star(16)},
        {"grid4x4", graph::make_grid2d(4, 4)},
        {"spider3x5", graph::make_spider(3, 5)},
        {"hypercube4", graph::make_hypercube(4)},
        {"lollipop6+10", graph::make_lollipop(6, 10)},
    };
    Table table({"graph", "n", "exact pw", "portfolio shape", "method",
                 "shape <= pw?"});
    for (const auto& c : cases) {
      const auto pw = decomp::exact_pathwidth(c.g);
      const auto best = decomp::best_path_decomposition(c.g);
      table.add_row({c.name, Table::integer(c.g.num_nodes()),
                     Table::integer(pw), Table::integer(best.measures.shape),
                     best.method,
                     best.measures.shape <= pw ? "yes" : "NO (worse than pw)"});
      h.add_cell({{"graph", std::string(c.name)},
                  {"n", static_cast<std::uint64_t>(c.g.num_nodes())},
                  {"method", best.method},
                  {"exact_pathwidth", static_cast<std::uint64_t>(pw)},
                  {"portfolio_shape",
                   static_cast<std::uint64_t>(best.measures.shape)}});
    }
    std::cout << table.to_ascii();
    std::cout << "note: 'NO' entries are allowed — the portfolio gives an\n"
                 "upper bound on ps and may exceed pw when its builders miss\n"
                 "the pw-optimal ordering; on cliques shape << pw.\n";
  }

  // (b) certified shapes across families at working sizes.
  if (h.section("E9b: certified pathshape bounds per family")) {
    const graph::NodeId n = h.quick() ? 1024 : 4096;
    Table table({"family", "n", "shape UB", "width", "length", "bags",
                 "method", "sec"});
    for (const auto& fam : graph::all_families()) {
      Rng rng(h.seed(0xE9));
      Timer timer;
      const auto g = fam.make(n, rng);
      const auto best = decomp::best_path_decomposition(g);
      table.add_row({fam.name, Table::integer(g.num_nodes()),
                     Table::integer(best.measures.shape),
                     Table::integer(best.measures.width),
                     Table::integer(best.measures.length),
                     Table::integer(best.measures.num_bags), best.method,
                     Table::num(timer.seconds(), 2)});
      h.add_cell({{"family", std::string(fam.name)},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"method", best.method},
                  {"shape_ub",
                   static_cast<std::uint64_t>(best.measures.shape)},
                  {"width", static_cast<std::uint64_t>(best.measures.width)},
                  {"length",
                   static_cast<std::uint64_t>(best.measures.length)},
                  {"num_bags",
                   static_cast<std::uint64_t>(best.measures.num_bags)},
                  {"seconds", timer.seconds()}});
    }
    std::cout << table.to_ascii();
  }

  // (b') model-specific certified decompositions (Corollary 1 inputs).
  if (h.section("E9b': AT-free certificates (interval & permutation)")) {
    const graph::NodeId n = h.quick() ? 512 : 2048;
    Rng rng(h.seed(0xE9B));
    Table table({"model", "n", "length", "shape", "valid"});
    const auto record = [&](const std::string& model, const graph::Graph& g,
                            const decomp::PathDecomposition& pd) {
      const auto m = decomp::measure_capped(g, pd, 1u << 20);
      table.add_row({model, Table::integer(g.num_nodes()),
                     Table::integer(m.length), Table::integer(m.shape),
                     pd.is_valid(g) ? "yes" : "NO"});
      h.add_cell({{"model", model},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"length", static_cast<std::uint64_t>(m.length)},
                  {"shape", static_cast<std::uint64_t>(m.shape)},
                  {"valid", static_cast<std::uint64_t>(pd.is_valid(g))}});
    };
    {
      const auto model = graph::connected_random_interval_model(n, rng);
      const auto g = model.to_graph();
      record("interval clique path", g, decomp::interval_decomposition(model));
    }
    {
      const auto model = graph::banded_permutation_model(n, 8, rng);
      const auto g = model.to_graph();
      record("permutation cuts", g, decomp::permutation_decomposition(model));
    }
    std::cout << table.to_ascii();
  }

  // (c) random small instances: gap statistics vs exact pathwidth.
  if (h.section("E9c: random G(12, 0.3): portfolio vs exact, 20 seeds")) {
    RunningStats gap;
    int valid = 0;
    const int seeds = 20;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) + h.seed(0xE9C));
      const auto g = graph::make_connected_gnp(12, 0.3, rng);
      const auto pw = decomp::exact_pathwidth(g);
      const auto best = decomp::best_path_decomposition(g);
      valid += best.decomposition.is_valid(g);
      gap.add(static_cast<double>(best.measures.shape) -
              static_cast<double>(pw));
    }
    std::cout << "valid decompositions: " << valid << "/" << seeds << "\n";
    std::cout << "shapeUB - pw: mean " << Table::num(gap.mean(), 2) << ", min "
              << Table::num(gap.min(), 0) << ", max "
              << Table::num(gap.max(), 0) << "\n";
    h.add_cell({{"model", std::string("connected_gnp(12,0.3)")},
                {"seeds", static_cast<std::uint64_t>(seeds)},
                {"valid", static_cast<std::uint64_t>(valid)},
                {"gap_mean", gap.mean()},
                {"gap_min", gap.min()},
                {"gap_max", gap.max()}});
  }

  if (h.section("E9 summary")) {
    std::cout
        << "PASS criteria: every decomposition valid; path/caterpillar/\n"
           "interval/permutation shapes <= 2; tree families <= log2(n)+1;\n"
           "clique-bearing families (K9, lollipop, ring_of_cliques) show\n"
           "shape < pathwidth (length rescues wide bags) — the reason the\n"
           "paper introduces shape instead of reusing pathwidth.\n";
  }
  return h.finish();
}
