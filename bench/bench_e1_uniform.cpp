// bench_e1_uniform.cpp — Experiment E1: the uniform scheme across families.
//
// Claim (paper §1, Peleg): for ANY n-node graph, greedy routing under the
// uniform augmentation takes O(sqrt n) expected steps. The bound is tight on
// the path. On families whose balls grow faster the scheme does better
// (grid: ~n^{1/3}; expanders: ~log n, capped by the diameter).
//
// Output: one sweep table per family + the fitted exponent. Expected shape:
//   path/cycle/caterpillar   exponent ~ 0.5
//   grid2d/torus2d           exponent ~ 1/3
//   balanced_tree/gnp        near-flat (diameter-capped)
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e1", "e1_uniform",
                   "E1: uniform scheme — the O(sqrt n) universal baseline",
                   "greedy diameter under phi_unif is O(sqrt n) on every "
                   "family; tight (exponent ~0.5) on path-like families",
                   argc, argv);
  h.group_by({"scheme", "family"});

  const unsigned hi = h.quick() ? 13 : 17;
  for (const auto* family :
       {"path", "cycle", "caterpillar", "grid2d", "torus2d", "balanced_tree",
        "gnp"}) {
    if (!h.section(std::string("E1: uniform on ") + family)) continue;
    h.run_and_print(api::Experiment::on(family)
                        .sizes(bench::pow2_sizes(10, hi))
                        .schemes({"uniform"})
                        .pairs(12)
                        .resamples(16)
                        .seed(h.seed(0xE1)));
  }

  if (h.section("E1 summary")) {
    std::cout
        << "PASS criteria: path/cycle/caterpillar exponents in [0.40, 0.60];\n"
           "grid/torus exponents in [0.25, 0.42]; tree/gnp well below 0.3.\n";
  }
  return h.finish();
}
