// bench_common.hpp — shared scaffolding for the experiment binaries.
//
// Every bench accepts:
//   --quick   smaller grids, for smoke runs
//   --csv     write sweep_<family>.csv next to the binary
//   --jsonl   write sweep_<family>.jsonl (one JSON object per grid cell —
//             the native trajectory format for downstream tooling)
// and prints self-describing sections so that `for b in build/bench_*; do
// $b; done` produces a readable experiment log.
//
// Benches compile against the nav/nav.hpp facade only; sweeps are declared
// with api::Experiment and rendered through run_and_print.
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "nav/nav.hpp"

namespace nav::bench {

struct BenchOptions {
  bool quick = false;
  bool csv = false;
  bool jsonl = false;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) opt.csv = true;
    if (std::strcmp(argv[i], "--jsonl") == 0) opt.jsonl = true;
  }
  return opt;
}

inline void section(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "========================================================\n";
  std::cout << experiment << "\n";
  std::cout << "claim under test: " << claim << "\n";
  std::cout << "========================================================\n";
}

/// Runs one sweep grid and prints its table and exponent fits; optional CSV
/// and JSON Lines dumps land next to the binary.
inline api::ExperimentResult run_and_print(api::Experiment experiment,
                                           const BenchOptions& opt) {
  Timer timer;
  const std::string stem = "sweep_" + experiment.family();
  std::ofstream jsonl_stream;
  std::unique_ptr<api::JsonLinesSink> jsonl;
  bool jsonl_open = false;
  if (opt.jsonl) {
    jsonl_stream.open(stem + ".jsonl");
    if (jsonl_stream) {
      jsonl = std::make_unique<api::JsonLinesSink>(jsonl_stream);
      experiment.stream_to(*jsonl);
      jsonl_open = true;
    } else {
      std::cerr << "warning: cannot open " << stem
                << ".jsonl — skipping jsonl output\n";
    }
  }
  const auto result = experiment.run();
  std::cout << result.table().to_ascii();
  std::cout << "exponent fits (greedy diameter ~ n^slope):\n"
            << result.fit_table().to_ascii();
  std::cout << "[" << experiment.family() << " sweep took "
            << Table::num(timer.seconds(), 1) << "s]\n";
  if (opt.csv) {
    result.table().save_csv(stem + ".csv");
    std::cout << "csv written: " << stem << ".csv\n";
  }
  if (jsonl_open) std::cout << "jsonl written: " << stem << ".jsonl\n";
  return result;
}

/// Geometric size grid 2^lo .. 2^hi.
inline std::vector<graph::NodeId> pow2_sizes(unsigned lo, unsigned hi) {
  std::vector<graph::NodeId> sizes;
  for (unsigned e = lo; e <= hi; ++e) sizes.push_back(graph::NodeId{1} << e);
  return sizes;
}

}  // namespace nav::bench
