// bench_common.hpp — shared scaffolding for the experiment binaries.
//
// Every bench accepts `--quick` (smaller grids, for smoke runs) and prints
// self-describing sections so that `for b in build/bench/*; do $b; done`
// produces a readable experiment log. CSV dumps land next to the binary when
// `--csv` is passed.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "routing/experiment.hpp"
#include "runtime/table.hpp"
#include "runtime/timer.hpp"

namespace nav::bench {

struct BenchOptions {
  bool quick = false;
  bool csv = false;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) opt.csv = true;
  }
  return opt;
}

inline void section(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "========================================================\n";
  std::cout << experiment << "\n";
  std::cout << "claim under test: " << claim << "\n";
  std::cout << "========================================================\n";
}

/// Runs one family sweep and prints its table and exponent fits.
inline std::vector<routing::SweepRow> run_and_print(
    const routing::SweepConfig& config, const BenchOptions& opt) {
  Timer timer;
  auto rows = routing::run_sweep(config);
  std::cout << routing::sweep_table(rows).to_ascii();
  std::cout << "exponent fits (greedy diameter ~ n^slope):\n"
            << routing::fit_table(routing::fit_exponents(rows)).to_ascii();
  std::cout << "[" << config.family << " sweep took "
            << Table::num(timer.seconds(), 1) << "s]\n";
  if (opt.csv) {
    const std::string path = "sweep_" + config.family + ".csv";
    routing::sweep_table(rows).save_csv(path);
    std::cout << "csv written: " << path << "\n";
  }
  return rows;
}

/// Geometric size grid 2^lo .. 2^hi.
inline std::vector<graph::NodeId> pow2_sizes(unsigned lo, unsigned hi) {
  std::vector<graph::NodeId> sizes;
  for (unsigned e = lo; e <= hi; ++e) sizes.push_back(graph::NodeId{1} << e);
  return sizes;
}

}  // namespace nav::bench
