// bench_e6_phases.cpp — Experiment E6: the five-phase anatomy of Theorem 4.
//
// The proof of Theorem 4 splits a greedy route toward t into phases around
// B = the n^{2/3} closest nodes to t:
//   phase 1  entering B                          — expected Õ(n^{1/3})
//   phases 2-4  manoeuvring inside B (leaving the boundary, growing and
//               shrinking the ball around the current node)  — Õ(n^{1/3})
//   phase 5  the final <= n^{1/3} local steps    — n^{1/3}
//
// The bench routes with tracing, classifies every hop by the distance to the
// target (outside B / inside B above n^{1/3} / within n^{1/3}), and checks
// each bucket scales like Õ(n^{1/3}) — the mechanism, not just the total.
#include "harness.hpp"

#include <algorithm>
#include <cmath>

namespace {

using namespace nav;

struct PhaseBreakdown {
  double enter_b = 0;   // hops taken while dist(u,t) > radius(B)
  double middle = 0;    // hops inside B with dist > n^{1/3}
  double final_leg = 0; // hops with dist <= n^{1/3}
};

/// Distance threshold d such that |{v : dist(v,t) <= d}| >= size.
graph::Dist ball_radius_for_size(std::span<const graph::Dist> dist_to_t,
                                 std::size_t size) {
  std::vector<graph::Dist> sorted;
  sorted.reserve(dist_to_t.size());
  for (const auto d : dist_to_t) {
    if (d != graph::kInfDist) sorted.push_back(d);
  }
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(size, sorted.size()) - 1;
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("e6", "e6_phases",
                   "E6: Theorem 4 proof mechanics — per-phase step counts",
                   "each phase of the five-phase analysis contributes "
                   "~O(n^{1/3}) steps (B = n^{2/3} closest nodes to t)",
                   argc, argv);
  h.group_by({"family", "n"});

  const unsigned hi = h.quick() ? 13 : 17;
  for (const auto* family : {"path", "torus2d"}) {
    if (!h.section(std::string("E6: phase breakdown on ") + family)) continue;
    Table table({"family", "n", "total", "enter B", "inside B", "final n^1/3",
                 "n^1/3 ref"});
    std::vector<double> ns, enter, middle, final_leg;
    for (unsigned e = 12; e <= hi; ++e) {
      Rng rng(h.seed(0xE6));
      const auto g =
          graph::family(family).make(graph::NodeId{1} << e, rng);
      const auto n = static_cast<double>(g.num_nodes());
      core::BallScheme scheme(g);
      graph::TargetDistanceCache oracle(g, 4);
      routing::GreedyRouter router(g, oracle);
      const auto pp = graph::peripheral_pair(g);
      const auto dist_to_t = oracle.distances_to(pp.b);

      const auto b_size = static_cast<std::size_t>(std::pow(n, 2.0 / 3.0));
      const auto b_radius = ball_radius_for_size(*dist_to_t, b_size);
      const auto cbrt_n = static_cast<graph::Dist>(std::cbrt(n));

      RunningStats s_enter, s_middle, s_final, s_total;
      const int trials = h.quick() ? 8 : 16;
      for (int trial = 0; trial < trials; ++trial) {
        Rng trial_rng = rng.child(static_cast<std::uint64_t>(trial) + e * 100);
        const auto result =
            router.route(pp.a, pp.b, &scheme, trial_rng, /*record_trace=*/true);
        PhaseBreakdown breakdown;
        for (std::size_t i = 0; i < result.steps; ++i) {
          const auto d = (*dist_to_t)[result.trace[i]];
          if (d > b_radius) breakdown.enter_b += 1;
          else if (d > cbrt_n) breakdown.middle += 1;
          else breakdown.final_leg += 1;
        }
        s_enter.add(breakdown.enter_b);
        s_middle.add(breakdown.middle);
        s_final.add(breakdown.final_leg);
        s_total.add(result.steps);
      }
      table.add_row({family, Table::integer(g.num_nodes()),
                     Table::num(s_total.mean(), 1),
                     Table::num(s_enter.mean(), 1),
                     Table::num(s_middle.mean(), 1),
                     Table::num(s_final.mean(), 1),
                     Table::num(std::cbrt(n), 1)});
      h.add_cell({{"family", std::string(family)},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"total_steps", s_total.mean()},
                  {"enter_b_steps", s_enter.mean()},
                  {"inside_b_steps", s_middle.mean()},
                  {"final_leg_steps", s_final.mean()}});
      ns.push_back(n);
      enter.push_back(std::max(1.0, s_enter.mean()));
      middle.push_back(std::max(1.0, s_middle.mean()));
      final_leg.push_back(std::max(1.0, s_final.mean()));
    }
    std::cout << table.to_ascii();
    std::cout << "phase exponents: enter B "
              << Table::num(fit_power_law(ns, enter).slope, 2) << ", inside B "
              << Table::num(fit_power_law(ns, middle).slope, 2) << ", final "
              << Table::num(fit_power_law(ns, final_leg).slope, 2) << "\n";
  }

  if (h.section("E6 summary")) {
    std::cout << "PASS criteria: on the path every phase exponent is in\n"
                 "[0.1, 0.5] — each phase is bounded by ~O(n^{1/3}), and the\n"
                 "bound is an upper bound, so drifting *below* 1/3 (polylog\n"
                 "mixing effects at these sizes) is consistent — and no phase\n"
                 "dominates asymptotically. On the torus the total is\n"
                 "diameter-capped but the same decomposition applies.\n";
  }
  return h.finish();
}
