// harness.hpp — the shared bench harness every experiment binary runs on.
//
// Grown from the old header-only bench_common.hpp: besides the banner and
// section headers, the Harness now owns
//
//   * the shared CLI: --quick, --csv, --jsonl, --out <dir>, --seed <n>,
//     --section <substr> (repeatable section filter), --list-sections,
//     --help;
//   * uniform trajectory emission: with --jsonl every bench writes a
//     `nav-bench-trajectory-v1` document BENCH_<id>.json (e.g. BENCH_e1.json)
//     holding every recorded cell, and refreshes a merged BENCH_all.json
//     from all per-bench documents present in the output directory — the
//     files scripts/plot_bench.py renders and scripts/compare_bench.py
//     diffs for regressions. Emission (including the wall-clock "loose
//     metric" classification) lives in api::TrajectoryWriter
//     (src/api/trajectory.hpp), shared with CLI sweep drivers; the harness
//     is a thin front-end over it.
//
// A bench binary is a sequence of guarded sections:
//
//   int main(int argc, char** argv) {
//     nav::bench::Harness h("e1", "e1_uniform", "E1: ...", "claim ...",
//                           argc, argv);
//     if (h.section("E1: uniform on path")) {
//       h.run_and_print(nav::api::Experiment::on("path")
//                           .sizes(nav::bench::pow2_sizes(10, 13))
//                           .seed(h.seed(0xE1)));
//     }
//     if (h.section("hand-rolled part")) {
//       ...
//       h.add_cell({{"mode", std::string("fast")}, {"hops", 12.0}});
//     }
//     return h.finish();
//   }
//
// Sections run only when no --section filter excludes them, so a single
// binary doubles as a collection of individually runnable experiments.
// Cells recorded while a section is active carry a "section" field in the
// trajectory document (explicit add_cell records keep their caller-chosen
// bytes in the per-bench .jsonl stream — that surface is golden-pinned).
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/trajectory.hpp"
#include "nav/nav.hpp"

namespace nav::bench {

/// Parsed shared bench CLI. See Harness for flag semantics.
struct BenchOptions {
  bool quick = false;          ///< --quick: smaller grids for smoke runs
  bool csv = false;            ///< --csv: write sweep_<family>.csv per sweep
  bool jsonl = false;          ///< --jsonl: sweep/bench .jsonl + BENCH_*.json
  bool list_sections = false;  ///< --list-sections: print sections, run none
  bool seed_set = false;       ///< --seed was given
  std::uint64_t seed = 0;      ///< --seed value (meaningful iff seed_set)
  std::string out_dir = ".";   ///< --out: directory for every produced file
  std::vector<std::string> section_filters;  ///< --section substrings
};

/// Parses the shared flags. With `allow_unknown` (bench_micro, which also
/// carries --benchmark_* flags) unrecognised arguments are ignored;
/// otherwise they print usage and exit(2). --help prints usage and exit(0).
BenchOptions parse_options(int argc, char** argv, bool allow_unknown = false);

/// Geometric size grid 2^lo .. 2^hi.
std::vector<graph::NodeId> pow2_sizes(unsigned lo, unsigned hi);

/// One experiment binary's run: banner, guarded sections, recorded cells,
/// and (with --jsonl) the trajectory documents written by finish().
class Harness {
 public:
  /// `id` names the trajectory document (BENCH_<id>.json); `name` is the
  /// bench identity inside it and the stem of the per-bench jsonl
  /// (bench_<name>.jsonl). An empty `title` suppresses the banner
  /// (bench_micro: google-benchmark prints its own context block).
  Harness(std::string id, std::string name, const std::string& title,
          const std::string& claim, int argc, char** argv,
          bool allow_unknown_flags = false);

  /// Writes the trajectory documents if finish() was not called explicitly.
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] const BenchOptions& options() const noexcept { return opt_; }
  [[nodiscard]] bool quick() const noexcept { return opt_.quick; }

  /// The bench's master seed: `fallback` normally, or a --seed-derived
  /// perturbation of it (fallback ^ splitmix64(--seed), so one --seed value
  /// shifts every stream of the bench consistently).
  [[nodiscard]] std::uint64_t seed(std::uint64_t fallback) const noexcept;

  /// Opens a section: prints the header and returns true when the section
  /// should run; returns false when filtered out by --section or when
  /// --list-sections is enumerating. Guard every work block with it.
  [[nodiscard]] bool section(const std::string& title);

  /// Closes the current section: later cells carry no "section" field again.
  /// Needed when section-less recording (bench_micro's google-benchmark
  /// reporter, whose series keys are golden/baseline-tracked without a
  /// section) follows a harness section in the same binary.
  void end_section() { current_section_.clear(); }

  /// Records one trajectory cell under the current section. The record's
  /// own fields (keys + metrics) are kept verbatim; with --jsonl it is also
  /// streamed, byte-for-byte as passed, to bench_<name>.jsonl.
  void add_cell(api::Record cell);

  /// Embeds a scraped metrics snapshot as one trajectory cell: key fields
  /// from `keys` plus one numeric field per counter / gauge / histogram
  /// (count and sum) whose registry name starts with `name_prefix` (empty =
  /// all). Field names become obs_<registry name with '.' -> '_'>, which the
  /// trajectory writer classifies as LOOSE metrics — scraped values are
  /// runtime observations, never a regression-gate surface.
  void add_metrics_cell(const obs::MetricsSnapshot& snapshot, api::Record keys,
                        const std::string& name_prefix = "");

  /// Runs one sweep grid and prints its table and exponent fits; optional
  /// CSV and JSON Lines dumps land in the output directory, and every cell
  /// is recorded into the trajectory document.
  api::ExperimentResult run_and_print(api::Experiment experiment);

  /// Overrides the trajectory document's "group_by" rendering hint
  /// (default: the first two string-valued key fields observed).
  void group_by(std::vector<std::string> fields);

  /// Writes BENCH_<id>.json and refreshes BENCH_all.json (when --jsonl and
  /// not --list-sections). Idempotent; returns the process exit code (0).
  int finish();

  /// `file_name` placed in the --out directory (the name unchanged when the
  /// output directory is the default "."). For bench-produced aux files.
  [[nodiscard]] std::string out_path(const std::string& file_name) const;

 private:
  std::string id_;
  std::string name_;
  BenchOptions opt_;
  api::TrajectoryWriter traj_;
  std::string current_section_;
  std::ofstream bench_jsonl_;
  std::unique_ptr<api::JsonLinesSink> bench_sink_;
  bool finished_ = false;
};

}  // namespace nav::bench
