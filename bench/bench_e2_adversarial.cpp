// bench_e2_adversarial.cpp — Experiment E2: Theorem 1's Ω(sqrt n) adversary.
//
// Claim (Theorem 1): for ANY augmentation matrix of size n there is a
// labeling of the n-node path forcing greedy diameter Ω(sqrt n). The bench
// realises the proof constructively for three structured matrices — the
// uniform matrix U, the Theorem 2 hierarchy matrix A, and the mix M=(A+U)/2 —
// finding a sqrt(n)-label set of internal mass < 1 and planting it on
// consecutive path nodes.
//
// Expected shape: measured steps between the adversarial endpoints scale as
// ~n^0.5 for EVERY matrix (exponent fit ~0.5), sitting above the proof's
// (|S|/3)·(1 - mass) floor.
#include "harness.hpp"

#include <cmath>

namespace {

using namespace nav;

core::MatrixPtr make_matrix(const std::string& kind, core::Label n) {
  if (kind == "U") return std::make_shared<core::UniformMatrix>(n);
  if (kind == "A") return std::make_shared<core::HierarchyMatrix>(n);
  return std::make_shared<core::MixMatrix>(
      std::make_shared<core::HierarchyMatrix>(n),
      std::make_shared<core::UniformMatrix>(n));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("e2", "e2_adversarial",
                   "E2: Theorem 1 — name-independent schemes hit "
                   "Omega(sqrt n)",
                   "for any matrix, some labeling of the path forces "
                   "Omega(sqrt n) greedy steps between segment endpoints",
                   argc, argv);
  h.group_by({"matrix", "n"});

  const unsigned hi = h.quick() ? 11 : 14;
  for (const auto* kind : {"U", "A", "M"}) {
    if (!h.section(std::string("E2: adversarial labeling vs matrix ") + kind))
      continue;
    Table table({"matrix", "n", "segment", "internal mass", "steps (mean)",
                 "ci95", "steps/sqrt(n)", "floor (|S|/3)(1-mass)"});
    std::vector<double> ns, steps;
    for (unsigned e = 8; e <= hi; ++e) {
      const core::Label n = core::Label{1} << e;
      Rng rng(h.seed(0xE2) + e);
      const auto matrix = make_matrix(kind, n);
      const auto inst = core::make_adversarial_path(*matrix, rng);
      core::MatrixScheme scheme(matrix, inst.labeling);

      graph::TargetDistanceCache oracle(inst.path, 4);
      const auto est = routing::estimate_pair(
          inst.path, &scheme, oracle, inst.source, inst.target, 32,
          Rng(h.seed(0x5eed) ^ e));
      const double segment =
          static_cast<double>(inst.segment_end - inst.segment_begin);
      const double floor = segment / 3.0 * (1.0 - inst.internal_mass);
      table.add_row({kind, Table::integer(n), Table::num(segment, 0),
                     Table::num(inst.internal_mass, 3),
                     Table::num(est.mean_steps, 1),
                     Table::num(est.ci_halfwidth, 1),
                     Table::num(est.mean_steps / std::sqrt(n), 2),
                     Table::num(floor, 1)});
      h.add_cell({{"matrix", std::string(kind)},
                  {"n", static_cast<std::uint64_t>(n)},
                  {"segment", segment},
                  {"internal_mass", inst.internal_mass},
                  {"steps_mean", est.mean_steps},
                  {"ci95", est.ci_halfwidth},
                  {"steps_over_sqrt_n", est.mean_steps / std::sqrt(n)},
                  {"floor", floor}});
      ns.push_back(n);
      steps.push_back(est.mean_steps);
    }
    std::cout << table.to_ascii();
    const auto fit = fit_power_law(ns, steps);
    std::cout << "exponent fit: " << Table::num(fit.slope, 3)
              << " (R^2 = " << Table::num(fit.r_squared, 3) << ")\n";
  }

  if (h.section("E2 summary")) {
    std::cout
        << "PASS criteria: every matrix's exponent in [0.40, 0.60]; every\n"
           "measured mean above its (|S|/3)(1-mass) floor. This matches\n"
           "Theorem 1: no name-independent matrix beats sqrt(n), so the\n"
           "labeling L of Theorem 2 is essential.\n";
  }
  return h.finish();
}
