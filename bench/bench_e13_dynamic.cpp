// bench_e13_dynamic.cpp — E13: navigability of a graph that refuses to hold
// still — churn/failure streams, incremental oracle invalidation, and
// feedback-driven rewiring.
//
// Claim under test: the paper's augmentation schemes are built for a static
// graph, but their navigability degrades gracefully under edge failures and
// churn (the robustness reading of "Navigability is a Robust Property"),
// the oracle layer can track mutations by invalidating only the distance
// rows a mutation can actually change (strictly fewer than a full flush),
// and a self-organizing rewire scheme recovers navigability from routing
// feedback alone (Zhuo et al.).
//
// Four sections:
//   1. E13a — robustness surface: family × scheme × fail_frac grid. The
//      scheme is built on the pristine graph, a one-shot "fail:<frac>"
//      stream removes edges, and the surviving trial pairs are routed with
//      the stale augmentation. success_rate is the fraction of pairs still
//      connected; stretch measures the detour the failures force.
//   2. E13b — churn under live traffic: a TrafficDriver closes the loop
//      around RouteService while a "churn:<rate>" stream mutates the
//      DynamicGraph between batches; the DynamicOracle's invalidation
//      counters ride along in the cells.
//   3. E13c — incremental vs full-flush: the same mutation sequence driven
//      through Mode::kIncremental and Mode::kFullFlush oracles; asserts the
//      acceptance criterion (incremental retains rows — invalidates
//      strictly fewer targets than the flush reference) and spot-checks
//      bit-identical distances against a cold oracle.
//   4. E13d — rewire self-organization: rounds of traced routes feeding
//      RewireScheme::learn(); mean hops fall as losing nodes re-draw.
//
// BENCH_dynamic.json: with --jsonl the harness writes the consolidated
// nav-bench-trajectory-v1 document (pinned by the bench golden test; the
// wall-clock fields are masked there).
#include <algorithm>
#include <cstdlib>

#include "harness.hpp"

namespace {

using namespace nav;

/// Cold reference distances: a fresh BFS on the current graph state.
graph::DistVecPtr cold_row(const graph::Graph& g, graph::NodeId target) {
  graph::TargetDistanceCache cold(g, 1);
  return cold.distances_to(target);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("dynamic", "e13_dynamic",
                   "E13 — dynamic graphs: failures, churn, incremental "
                   "invalidation, and self-organized rewiring",
                   "augmentation schemes built statically keep routing under "
                   "moderate edge failure (success degrades smoothly, "
                   "stretch grows); the DynamicOracle invalidates strictly "
                   "fewer rows than a full flush at identical distances; "
                   "feedback rewiring lowers mean hops round over round",
                   argc, argv);
  h.group_by({"family", "scheme"});

  // ---- 1. robustness surface: scheme × family × failed fraction ---------
  if (h.section("E13a: robustness surface (stale scheme vs edge failures)")) {
    const graph::NodeId n = h.quick() ? 512 : 2048;
    const std::vector<std::string> families =
        h.quick() ? std::vector<std::string>{"torus2d", "random_regular"}
                  : std::vector<std::string>{"torus2d", "random_regular",
                                             "gnp"};
    const std::vector<std::string> schemes =
        h.quick() ? std::vector<std::string>{"uniform", "ball"}
                  : std::vector<std::string>{"uniform", "ball", "ml"};
    const std::vector<std::string> fracs =
        h.quick() ? std::vector<std::string>{"0", "0.05", "0.15"}
                  : std::vector<std::string>{"0",   "0.02", "0.05",
                                             "0.1", "0.2",  "0.3"};
    routing::TrialConfig trials;
    trials.num_pairs = h.quick() ? 8 : 24;
    trials.resamples = h.quick() ? 4 : 8;

    for (std::size_t fi = 0; fi < families.size(); ++fi) {
      const auto& family = families[fi];
      Rng graph_rng = Rng(h.seed(0xE13A)).child(fi);
      const graph::Graph g = graph::family(family).make(n, graph_rng);
      // One pair set per family, selected on the PRISTINE graph, shared by
      // every (scheme, frac) cell — the surface is a controlled comparison.
      Rng pair_rng = Rng(h.seed(0x9a1e)).child(fi);
      const auto pairs = routing::select_trial_pairs(g, trials, pair_rng);

      Table table({"scheme", "fail_frac", "m", "success", "greedy-diam",
                   "mean", "stretch"});
      for (std::size_t ki = 0; ki < schemes.size(); ++ki) {
        Rng scheme_rng = Rng(h.seed(0x5c4e)).child(fi).child(ki);
        const auto scheme = core::make_scheme(schemes[ki], g, scheme_rng);

        for (const auto& frac : fracs) {
          nav::Timer timer;
          dynamic::DynamicGraph dyn(g);
          if (frac != "0") {
            const auto stream =
                dynamic::make_mutation_stream("fail:" + frac);
            Rng fail_rng = Rng(h.seed(0xFA11)).child(fi);
            dyn.apply(stream->step(dyn, fail_rng));
          }
          graph::OracleConfig oracle_config;
          oracle_config.cache_slots = trials.num_pairs + 8;
          const auto oracle =
              graph::make_oracle("auto", dyn.graph(), oracle_config);
          const auto router =
              routing::make_router("greedy", dyn.graph(), *oracle);
          api::RouteServiceOptions options;
          const api::RouteService service(dyn.graph(), *oracle, scheme.get(),
                                          *router, options);

          // Pairs the failures disconnected cannot be routed greedily; the
          // surviving fraction IS the robustness metric.
          std::vector<std::pair<graph::NodeId, graph::NodeId>> kept;
          for (const auto& [s, t] : pairs) {
            if (oracle->distance(s, t) != graph::kInfDist) {
              kept.push_back({s, t});
            }
          }
          const double success = static_cast<double>(kept.size()) /
                                 static_cast<double>(pairs.size());
          routing::GreedyDiameterEstimate estimate;
          double stretch_sum = 0.0;
          std::size_t stretch_count = 0;
          if (!kept.empty()) {
            estimate = service.estimate_diameter(
                trials, Rng(h.seed(0x7a1a)).child(fi).child(ki), kept);
            for (const auto& pe : estimate.pairs) {
              if (pe.distance >= 1) {
                stretch_sum +=
                    pe.mean_steps / static_cast<double>(pe.distance);
                ++stretch_count;
              }
            }
          }
          const double stretch =
              stretch_count > 0
                  ? stretch_sum / static_cast<double>(stretch_count)
                  : 0.0;
          table.add_row({schemes[ki], frac,
                         Table::integer(dyn.graph().num_edges()),
                         Table::num(success, 3),
                         Table::num(estimate.max_mean_steps, 1),
                         Table::num(estimate.overall_mean_steps, 1),
                         Table::num(stretch, 2)});
          h.add_cell({{"experiment", std::string("e13_dynamic")},
                      {"family", family},
                      {"scheme", schemes[ki]},
                      {"fail_frac", std::strtod(frac.c_str(), nullptr)},
                      {"n", static_cast<std::uint64_t>(g.num_nodes())},
                      {"m", static_cast<std::uint64_t>(
                                dyn.graph().num_edges())},
                      {"success_rate", success},
                      {"greedy_diameter", estimate.max_mean_steps},
                      {"mean_steps", estimate.overall_mean_steps},
                      {"stretch_mean", stretch},
                      {"seconds", timer.seconds()}});
        }
      }
      std::cout << family << " n=" << g.num_nodes() << "\n"
                << table.to_ascii();
    }
  }

  // ---- 2. churn under live traffic --------------------------------------
  if (h.section("E13b: churn between batches (TrafficDriver closed loop)")) {
    const graph::NodeId n = h.quick() ? 1024 : 4096;
    const std::size_t batches = h.quick() ? 6 : 24;
    const std::size_t batch_size = h.quick() ? 64 : 256;
    const std::vector<std::string> schemes = {"uniform", "ball"};
    // churn:0 closes the loop without mutating — it must reproduce the
    // open-loop route results bit for bit (pinned by the workload tests).
    const std::vector<std::string> churn_specs = {"churn:0", "churn:2",
                                                  "churn:8"};

    for (const auto& scheme_spec : schemes) {
      Table table({"mutations", "events", "epoch", "unreached", "hops p50",
                   "hops p95", "stretch p95", "invalidated", "retained"});
      for (const auto& churn : churn_specs) {
        nav::Timer timer;
        Rng graph_rng(h.seed(0xE13B));
        dynamic::DynamicGraph dyn(
            graph::family("torus2d").make(n, graph_rng));
        dynamic::DynamicOracle oracle(dyn);
        Rng scheme_rng(h.seed(0x5eed));
        const auto scheme =
            core::make_scheme(scheme_spec, dyn.graph(), scheme_rng);
        const auto router =
            routing::make_router("greedy", dyn.graph(), oracle);
        api::RouteServiceOptions options;
        options.tolerate_unreachable = true;  // churn may cut a pair off
        api::RouteService service(dyn.graph(), oracle, scheme.get(), *router,
                                  options);
        const auto demand = workload::make_workload(
            "zipf:1.2", dyn.graph(), Rng(h.seed(0xE13B)));
        const auto stream = dynamic::make_mutation_stream(churn);

        workload::TrafficOptions traffic;
        traffic.schedule = "burst:4:0.0";
        traffic.batches = batches;
        traffic.batch_size = batch_size;
        traffic.dynamic_graph = &dyn;
        traffic.mutations = stream.get();
        workload::TrafficDriver driver(service, *demand, traffic);
        const auto report = driver.run(Rng(h.seed(0xD81)));
        const auto stats = oracle.stats();

        table.add_row({churn, Table::integer(report.mutation_events),
                       Table::integer(report.final_epoch),
                       Table::integer(report.pairs_unreached),
                       Table::num(report.hops.p50, 1),
                       Table::num(report.hops.p95, 1),
                       Table::num(report.stretch.p95, 2),
                       Table::integer(stats.targets_invalidated),
                       Table::integer(stats.targets_retained)});
        h.add_cell({{"experiment", std::string("e13_dynamic")},
                    {"family", std::string("torus2d")},
                    {"scheme", scheme_spec},
                    {"mutations", churn},
                    {"n", static_cast<std::uint64_t>(dyn.graph().num_nodes())},
                    {"batches", static_cast<std::uint64_t>(batches)},
                    {"batch_size", static_cast<std::uint64_t>(batch_size)},
                    {"pairs_admitted",
                     static_cast<std::uint64_t>(report.pairs_admitted)},
                    {"pairs_unreached",
                     static_cast<std::uint64_t>(report.pairs_unreached)},
                    {"mutation_events",
                     static_cast<std::uint64_t>(report.mutation_events)},
                    {"final_epoch", report.final_epoch},
                    {"hops_p50", report.hops.p50},
                    {"hops_p95", report.hops.p95},
                    {"stretch_p95", report.stretch.p95},
                    {"targets_scanned", stats.targets_scanned},
                    {"targets_invalidated", stats.targets_invalidated},
                    {"targets_retained", stats.targets_retained},
                    {"seconds", timer.seconds()}});
      }
      std::cout << "scheme=" << scheme_spec << "\n" << table.to_ascii();
    }
  }

  // ---- 3. incremental vs full-flush (the acceptance counters) -----------
  if (h.section("E13c: incremental invalidation vs full flush")) {
    const graph::NodeId n = h.quick() ? 512 : 2048;
    const std::size_t steps = h.quick() ? 8 : 32;
    const std::string churn = "churn:1";

    // Drive BOTH oracles through the identical mutation sequence: the
    // stream runs against the incremental graph, and each delta's effective
    // events replay onto the flush graph.
    Rng graph_rng_a(h.seed(0xE13C));
    Rng graph_rng_b(h.seed(0xE13C));
    dynamic::DynamicGraph dyn_inc(
        graph::family("torus2d").make(n, graph_rng_a));
    dynamic::DynamicGraph dyn_flush(
        graph::family("torus2d").make(n, graph_rng_b));
    dynamic::DynamicOracle::Options inc_options;
    inc_options.mode = dynamic::DynamicOracle::Mode::kIncremental;
    dynamic::DynamicOracle::Options flush_options;
    flush_options.mode = dynamic::DynamicOracle::Mode::kFullFlush;
    dynamic::DynamicOracle inc(dyn_inc, inc_options);
    dynamic::DynamicOracle flush(dyn_flush, flush_options);

    const auto stream = dynamic::make_mutation_stream(churn);
    Rng churn_rng(h.seed(0xC4a2));
    Rng probe_rng(h.seed(0x90be));
    std::size_t mismatches = 0;
    for (std::size_t s = 0; s < steps; ++s) {
      const auto delta = dyn_inc.apply(stream->step(dyn_inc, churn_rng));
      dyn_flush.apply(delta.events);
      // Spot-check: both modes — and a cold BFS on the mutated graph —
      // agree bit for bit on a sample of rows after every step.
      for (int probe = 0; probe < 4; ++probe) {
        const auto target = static_cast<graph::NodeId>(
            probe_rng.next_below(dyn_inc.graph().num_nodes()));
        const auto row_inc = inc.distances_to(target);
        const auto row_flush = flush.distances_to(target);
        const auto row_cold = cold_row(dyn_inc.graph(), target);
        for (graph::NodeId u = 0; u < dyn_inc.graph().num_nodes(); ++u) {
          if ((*row_inc)[u] != (*row_cold)[u] ||
              (*row_flush)[u] != (*row_cold)[u]) {
            ++mismatches;
          }
        }
      }
    }
    const auto inc_stats = inc.stats();
    const auto flush_stats = flush.stats();
    NAV_REQUIRE(mismatches == 0,
                "incremental/full-flush/cold distances diverged");
    // The PR's acceptance criterion: the tightness test must retain rows —
    // invalidate strictly fewer targets than the flush reference does.
    NAV_REQUIRE(inc_stats.targets_retained > 0,
                "incremental invalidation retained nothing");
    NAV_REQUIRE(
        inc_stats.targets_invalidated < flush_stats.targets_invalidated,
        "incremental invalidation was no tighter than a full flush");

    Table table({"mode", "steps", "scanned", "invalidated", "retained",
                 "full flushes"});
    const auto add = [&](const char* mode_name,
                         const dynamic::InvalidationStats& stats) {
      table.add_row({mode_name, Table::integer(steps),
                     Table::integer(stats.targets_scanned),
                     Table::integer(stats.targets_invalidated),
                     Table::integer(stats.targets_retained),
                     Table::integer(stats.full_flushes)});
      h.add_cell({{"experiment", std::string("e13_dynamic")},
                  {"family", std::string("torus2d")},
                  {"mode", std::string(mode_name)},
                  {"mutations", churn},
                  {"n", static_cast<std::uint64_t>(
                            dyn_inc.graph().num_nodes())},
                  {"mutation_steps", static_cast<std::uint64_t>(steps)},
                  {"targets_scanned", stats.targets_scanned},
                  {"targets_invalidated", stats.targets_invalidated},
                  {"targets_retained", stats.targets_retained},
                  {"full_flushes", stats.full_flushes}});
    };
    add("incremental", inc_stats);
    add("full_flush", flush_stats);
    std::cout << table.to_ascii()
              << "(distances bit-identical across modes and a cold rebuild "
                 "at every step)\n";
  }

  // ---- 4. rewire self-organization --------------------------------------
  if (h.section("E13d: feedback rewiring (mean hops round over round)")) {
    const graph::NodeId n = h.quick() ? 256 : 1024;
    const std::size_t rounds = h.quick() ? 6 : 12;
    const std::size_t routes_per_round = h.quick() ? 128 : 512;

    Rng graph_rng(h.seed(0xE13D));
    const graph::Graph g = graph::family("cycle").make(n, graph_rng);
    const auto oracle = graph::make_oracle("auto", g);
    const auto router = routing::make_router("greedy", g, *oracle);
    Rng scheme_build_rng(h.seed(0x5e1f));
    const auto scheme =
        dynamic::make_rewire_scheme("rewire:uniform", g, scheme_build_rng);

    Rng round_rng(h.seed(0x2e81));
    Table table({"round", "mean hops", "rewired", "successes", "failures"});
    for (std::size_t round = 0; round < rounds; ++round) {
      Rng route_rng = round_rng.child(round);
      std::vector<routing::RouteResult> results;
      results.reserve(routes_per_round);
      double hop_sum = 0.0;
      for (std::size_t i = 0; i < routes_per_round; ++i) {
        const auto s =
            static_cast<graph::NodeId>(route_rng.next_below(g.num_nodes()));
        auto t =
            static_cast<graph::NodeId>(route_rng.next_below(g.num_nodes() - 1));
        if (t >= s) ++t;
        results.push_back(router->route(s, t, scheme.get(),
                                        route_rng.child(i),
                                        /*record_trace=*/true));
        hop_sum += static_cast<double>(results.back().steps);
      }
      const double mean_hops =
          hop_sum / static_cast<double>(routes_per_round);
      Rng learn_rng = round_rng.child(0xF00 + round);
      const auto learned = scheme->learn(results, learn_rng);

      table.add_row({Table::integer(round), Table::num(mean_hops, 2),
                     Table::integer(learned.nodes_rewired),
                     Table::integer(learned.successes),
                     Table::integer(learned.failures)});
      h.add_cell({{"experiment", std::string("e13_dynamic")},
                  {"family", std::string("cycle")},
                  {"scheme", std::string("rewire:uniform")},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"round", static_cast<std::uint64_t>(round)},
                  {"mean_hops", mean_hops},
                  {"nodes_rewired",
                   static_cast<std::uint64_t>(learned.nodes_rewired)},
                  {"long_link_successes",
                   static_cast<std::uint64_t>(learned.successes)},
                  {"long_link_failures",
                   static_cast<std::uint64_t>(learned.failures)}});
    }
    std::cout << table.to_ascii();
  }
  return h.finish();
}
