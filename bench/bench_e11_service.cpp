// bench_e11_service.cpp — E11: batched target-sharded routing vs per-pair
// route_many at cache-oracle sizes.
//
// Claim under test: when the distance oracle is a TargetDistanceCache (n
// above the dense-matrix limit), routing a mixed batch pair-by-pair thrashes
// the LRU — nearly every pair whose target was evicted pays a fresh BFS —
// while RouteService's target shards pay exactly one BFS per distinct
// target. Same results bit for bit (asserted), very different wall-clock.
//
// The workload interleaves targets (pair i gets target i mod T), the
// adversarial order for an LRU and the natural order for a service fed by
// independent clients.
#include "harness.hpp"

namespace {

using nav::Rng;
using nav::graph::NodeId;
using Pair = std::pair<NodeId, NodeId>;

std::vector<Pair> interleaved_pairs(NodeId n, std::size_t count,
                                    std::size_t distinct_targets,
                                    std::uint64_t seed) {
  std::vector<Pair> pairs;
  pairs.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto t = static_cast<NodeId>(i % distinct_targets);
    auto s = static_cast<NodeId>(nav::random_index(rng, n));
    if (s == t) s = (s + 1) % n;
    pairs.emplace_back(s, t);
  }
  return pairs;
}

struct ModeResult {
  double seconds = 0.0;
  std::size_t misses = 0;
  std::vector<nav::routing::RouteResult> results;
  nav::obs::MetricsSnapshot metrics;  // the service's registry, post-run
};

ModeResult run_mode(const nav::graph::Graph& g,
                    const nav::core::AugmentationScheme* scheme,
                    const std::vector<Pair>& pairs, std::size_t cache_capacity,
                    bool shard_by_target) {
  // A fresh cache per mode: both start cold, neither inherits warm vectors.
  nav::graph::TargetDistanceCache cache(g, cache_capacity);
  const auto router = nav::routing::make_router("greedy", g, cache);
  nav::api::RouteServiceOptions options;
  options.shard_by_target = shard_by_target;
  const nav::api::RouteService service(g, cache, scheme, *router, options);
  nav::Timer timer;
  ModeResult mode;
  mode.results = service.route_batch(pairs, Rng(0xE11));
  mode.seconds = timer.seconds();
  mode.misses = cache.misses();
  mode.metrics = service.metrics().scrape();
  return mode;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e11", "e11_service",
                   "E11 — batch routing service: target-sharded oracle "
                   "prefetch",
                   "sharding a batch by target cuts BFS churn from ~#pairs "
                   "to #targets at cache-oracle sizes, at identical results",
                   argc, argv);
  h.group_by({"mode", "n"});

  const graph::NodeId n = h.quick() ? 4096 : 16384;
  const std::size_t num_pairs = h.quick() ? 1024 : 4096;
  const std::size_t distinct_targets = h.quick() ? 128 : 256;
  const std::size_t cache_capacity = 64;  // EngineOptions default

  if (h.section("per-pair (legacy route_many order) vs target-sharded")) {
    Rng graph_rng(h.seed(0x5eed));
    const auto g = graph::family("grid2d").make(n, graph_rng);
    Rng scheme_rng(h.seed(0x5eed));
    const auto scheme = core::make_scheme("uniform", g, scheme_rng);
    const auto pairs =
        interleaved_pairs(g.num_nodes(), num_pairs, distinct_targets,
                          h.seed(17));

    std::cout << "n=" << g.num_nodes() << "  pairs=" << num_pairs
              << "  distinct targets=" << distinct_targets
              << "  cache capacity=" << cache_capacity << "\n";

    const auto per_pair =
        run_mode(g, scheme.get(), pairs, cache_capacity, false);
    const auto sharded =
        run_mode(g, scheme.get(), pairs, cache_capacity, true);

    // The whole point: execution schedule must not change a single hop count.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      NAV_REQUIRE(per_pair.results[i].steps == sharded.results[i].steps,
                  "sharded results diverged from per-pair results");
    }

    Table table({"mode", "pairs", "bfs (oracle misses)", "sec", "pairs/sec"});
    const auto add = [&](const std::string& mode, const ModeResult& r) {
      table.add_row({mode, Table::integer(pairs.size()),
                     Table::integer(r.misses), Table::num(r.seconds, 3),
                     Table::num(static_cast<double>(pairs.size()) / r.seconds,
                                0)});
      double mean_steps = 0.0;
      for (const auto& result : r.results) {
        mean_steps += static_cast<double>(result.steps);
      }
      mean_steps /= static_cast<double>(r.results.size());
      h.add_cell({{"mode", mode},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"pairs", static_cast<std::uint64_t>(pairs.size())},
                  {"targets", static_cast<std::uint64_t>(distinct_targets)},
                  {"cache_capacity",
                   static_cast<std::uint64_t>(cache_capacity)},
                  {"bfs", static_cast<std::uint64_t>(r.misses)},
                  {"mean_steps", mean_steps},
                  {"seconds", r.seconds}});
      // The service's scraped registry rides along as a loose-metric cell
      // (obs_* fields): queue counters and latency histograms next to the
      // strict results, without widening the gated surface.
      h.add_metrics_cell(r.metrics,
                         {{"mode", mode}, {"scrape", std::string("service")}},
                         "route_service.");
    };
    add("per-pair", per_pair);
    add("target-sharded", sharded);
    std::cout << table.to_ascii();
    const double speedup = per_pair.seconds / sharded.seconds;
    std::cout << "speedup (wall-clock): " << Table::num(speedup, 2) << "x   "
              << "BFS churn cut: " << per_pair.misses << " -> "
              << sharded.misses << "\n";
  }
  return h.finish();
}
