// bench_e12_workload.cpp — E12: navigability under non-uniform demand, and
// the RouteService under admission-controlled load.
//
// Claim under test: the paper's bounds are stated for uniform (s, t) demand,
// but navigability is demand-sensitive (Achlioptas–Siminelakis). Skewed
// targets (zipf/hotset) are the friendly regime for target-sharded prefetch
// (few distinct BFS per batch); far-pair demand (adversarial) is where the
// sqrt(n)-barrier bites; local demand barely exercises long links at all.
//
// Three sections:
//   1. Experiment grid with workloads as the fourth axis (fixed n):
//      greedy-diameter cells per workload × scheme, streamed via the
//      standard sweep machinery (--jsonl: sweep_torus2d.jsonl).
//   2. Service-level load drive: a TrafficDriver per workload × scheme
//      feeds RouteService submit() batches and reports hop/stretch/latency
//      percentiles (--jsonl: bench_e12_workload.jsonl, one row per cell —
//      pinned by the bench golden test; wall-clock fields are masked there).
//      Includes a recorded-trace replay cell (trace:<file> round trip).
//   3. Backpressure demo: a saturating burst against Bounded and Shed
//      admission, printing the queue counters (stdout only — inherently
//      timing-dependent, so no trajectory cells are recorded for it).
//
// BENCH_e12.json: with --jsonl the harness also writes the consolidated
// trajectory document (schema nav-bench-trajectory-v1) that
// scripts/plot_bench.py renders and scripts/compare_bench.py diffs.
#include "harness.hpp"

namespace {

using namespace nav;

/// One flat jsonl record per cell: bench identity + the driver's summary.
/// The field set and order are pinned by the bench golden test.
api::Record cell_record(const workload::WorkloadReport& report,
                        graph::NodeId n, const std::string& scheme) {
  api::Record record = {{"experiment", std::string("e12_workload")},
                        {"family", std::string("torus2d")},
                        {"n", static_cast<std::uint64_t>(n)},
                        {"scheme", scheme}};
  const auto summary = report.record();
  record.insert(record.end(), summary.begin(), summary.end());
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("e12", "e12_workload",
                   "E12 — workloads: navigability and service behaviour "
                   "under non-uniform demand",
                   "hop percentiles depend on the demand distribution (local "
                   "<< uniform << adversarial); skewed targets shrink "
                   "distinct-BFS cost; bounded admission sheds/blocks under "
                   "saturating bursts at identical routes",
                   argc, argv);
  h.group_by({"scheme", "workload"});

  const graph::NodeId n = h.quick() ? 1024 : 8192;
  const std::vector<std::string> workloads = {
      "uniform", "zipf:1.2", "local:8", "adversarial", "hotset:8:0.9"};
  const std::vector<std::string> schemes =
      h.quick() ? std::vector<std::string>{"uniform", "ball"}
                : std::vector<std::string>{"uniform", "ball", "ml"};

  // ---- 1. the Experiment workload axis ---------------------------------
  if (h.section("E12a: workload axis in the sweep grid (greedy diameter)")) {
    h.run_and_print(api::Experiment::on("torus2d")
                        .sizes({h.quick() ? graph::NodeId{512}
                                          : graph::NodeId{2048}})
                        .workloads(workloads)
                        .schemes(schemes)
                        .pairs(h.quick() ? 6 : 16)
                        .resamples(h.quick() ? 4 : 8)
                        .seed(h.seed(0xE12)));
  }

  // ---- 2. service-level load drive per workload × scheme ----------------
  if (h.section("E12b: TrafficDriver against RouteService (per-route "
                "percentiles)")) {
    auto engine = api::NavigationEngine::from_family("torus2d", n);
    std::cout << "torus2d n=" << engine.graph().num_nodes()
              << "  batches=" << (h.quick() ? 8 : 32)
              << "  batch_size=" << (h.quick() ? 64 : 256)
              << "  schedule=burst:4:0.0\n";

    workload::TrafficOptions traffic;
    traffic.schedule = "burst:4:0.0";
    traffic.batches = h.quick() ? 8 : 32;
    traffic.batch_size = h.quick() ? 64 : 256;

    const std::string trace_path = h.out_path("bench_e12_trace.jsonl");
    for (const auto& scheme : schemes) {
      engine.use_scheme(scheme, h.seed(0x5eed));
      api::RouteService service(engine);

      // The sweep workloads, plus a trace replay of the zipf demand: record
      // one batch of pairs, save, and drive the service from the file.
      auto specs = workloads;
      {
        const auto zipf = engine.make_workload("zipf:1.2", h.seed(0xE12));
        Rng trace_rng(h.seed(0x7ace));
        workload::save_trace(trace_path,
                             zipf->batch(traffic.batch_size, trace_rng));
        specs.push_back("trace:" + trace_path);
      }

      Table table({"workload", "pairs", "hops p50", "hops p95", "hops p99",
                   "stretch p95", "sojourn p95 ms", "routes/s"});
      for (const auto& spec : specs) {
        const auto demand = engine.make_workload(spec, h.seed(0xE12));
        workload::TrafficDriver driver(service, *demand, traffic);
        const auto report = driver.run(Rng(h.seed(0xD81)));
        table.add_row(
            {spec, Table::integer(report.pairs_admitted),
             Table::num(report.hops.p50, 1), Table::num(report.hops.p95, 1),
             Table::num(report.hops.p99, 1),
             Table::num(report.stretch.p95, 2),
             Table::num(report.sojourn_ms.p95, 2),
             Table::num(static_cast<double>(report.pairs_admitted) /
                            std::max(report.seconds, 1e-9),
                        0)});
        h.add_cell(cell_record(report, engine.graph().num_nodes(), scheme));
      }
      std::cout << "scheme=" << scheme << "\n" << table.to_ascii();
    }
  }

  // ---- 3. admission under a saturating burst ----------------------------
  if (h.section("E12c: admission policies under a saturating burst")) {
    auto engine = api::NavigationEngine::from_family("torus2d", n);
    engine.use_scheme("uniform", h.seed(0x5eed));
    const auto demand = engine.make_workload("zipf:1.2", h.seed(0xE12));
    workload::TrafficOptions flood;
    flood.schedule = "burst:16:0.0";
    flood.batches = 16;
    flood.batch_size = h.quick() ? 128 : 512;

    Table admission_table({"admission", "admitted", "shed", "blocked submits",
                           "peak queued pairs", "sojourn p95 ms"});
    const auto drive = [&](const std::string& name,
                           api::AdmissionPolicy policy) {
      api::RouteServiceOptions options;
      options.admission = policy;
      api::RouteService service(engine, options);
      workload::TrafficDriver driver(service, *demand, flood);
      const auto report = driver.run(Rng(h.seed(0xADA)));
      admission_table.add_row(
          {name, Table::integer(report.pairs_admitted),
           Table::integer(report.pairs_shed),
           Table::integer(report.queue.blocked_submits),
           Table::integer(report.queue.peak_queued_pairs),
           Table::num(report.sojourn_ms.p95, 2)});
    };
    drive("unbounded", api::AdmissionPolicy::unbounded());
    drive("bounded:" + std::to_string(flood.batch_size),
          api::AdmissionPolicy::bounded(flood.batch_size));
    drive("shed:1ms", api::AdmissionPolicy::shed(1e-3));
    std::cout << admission_table.to_ascii()
              << "(admitted routes are bit-identical across policies; only "
                 "queueing behaviour differs)\n";
  }
  return h.finish();
}
