// bench_micro.cpp — google-benchmark micro suite (M0): throughput of the
// primitives every experiment is built from. Informational — these numbers
// bound how large the E1..E9 grids can go on a given machine.
//
// The custom main wires the suite onto bench::Harness: besides the usual
// --benchmark_* flags, --quick caps per-benchmark time, and --jsonl emits
// BENCH_micro.json (nav-bench-trajectory-v1, one cell per benchmark run,
// every metric wall-clock/loose — the deterministic surface of a timing
// suite is its registered series, which compare_bench.py tracks through
// added/removed-series reporting and the list golden pins byte-for-byte).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "nav/nav.hpp"

namespace {

using namespace nav;

void BM_GraphBuildPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::make_path(n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphBuildPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_GraphBuildGnp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::make_gnp(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphBuildGnp)->Arg(1 << 12)->Arg(1 << 16);

void BM_BfsFull(benchmark::State& state) {
  const auto g = graph::make_grid2d(static_cast<graph::NodeId>(state.range(0)),
                                    static_cast<graph::NodeId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_BfsFull)->Arg(64)->Arg(256);

void BM_BallCollect(benchmark::State& state) {
  const auto g = graph::make_grid2d(256, 256);
  const auto radius = static_cast<graph::Dist>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ball(g, 256 * 128 + 128, radius));
  }
}
BENCHMARK(BM_BallCollect)->Arg(4)->Arg(16)->Arg(64);

void BM_SampleUniform(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::UniformScheme scheme(g);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(100, rng));
  }
}
BENCHMARK(BM_SampleUniform);

void BM_SampleBall(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::BallScheme scheme(g);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1 << 15, rng));
  }
}
BENCHMARK(BM_SampleBall);

void BM_SampleML(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::MLScheme scheme(g);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1 << 15, rng));
  }
}
BENCHMARK(BM_SampleML);

void BM_SampleTorusKleinberg(benchmark::State& state) {
  core::TorusKleinbergScheme scheme(256, 2.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1234, rng));
  }
}
BENCHMARK(BM_SampleTorusKleinberg);

void BM_RouteUniformPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_path(n);
  graph::TargetDistanceCache oracle(g, 2);
  routing::GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(6);
  (void)oracle.distances_to(n - 1);  // pre-warm: measure routing, not BFS
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng trial_rng = rng.child(trial++);
    benchmark::DoNotOptimize(router.route(0, n - 1, &scheme, trial_rng));
  }
}
BENCHMARK(BM_RouteUniformPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_RouteBallPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_path(n);
  graph::TargetDistanceCache oracle(g, 2);
  routing::GreedyRouter router(g, oracle);
  core::BallScheme scheme(g);
  Rng rng(7);
  (void)oracle.distances_to(n - 1);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng trial_rng = rng.child(trial++);
    benchmark::DoNotOptimize(router.route(0, n - 1, &scheme, trial_rng));
  }
}
BENCHMARK(BM_RouteBallPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_RouteManyBatch(benchmark::State& state) {
  // Facade batch throughput: route a block of pairs through the engine's
  // thread pool (the api entry point big sweeps are built on).
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto engine = api::NavigationEngine::from_family("torus2d", 1 << 14);
  engine.use_scheme("uniform");
  const auto n = engine.graph().num_nodes();
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  Rng pair_rng(9);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto s = static_cast<graph::NodeId>(random_index(pair_rng, n));
    auto t = static_cast<graph::NodeId>(random_index(pair_rng, n));
    if (t == s) t = (t + 1) % n;
    pairs.emplace_back(s, t);
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.route_many(pairs, Rng(round++)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RouteManyBatch)->Arg(64)->Arg(512);

void BM_TreeDecomposition(benchmark::State& state) {
  Rng rng(8);
  const auto g =
      graph::make_random_tree(static_cast<graph::NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::tree_path_decomposition(g));
  }
}
BENCHMARK(BM_TreeDecomposition)->Arg(1 << 10)->Arg(1 << 14);

void BM_BfsLayerDecomposition(benchmark::State& state) {
  const auto side = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_grid2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::bfs_layer_decomposition(g));
  }
}
BENCHMARK(BM_BfsLayerDecomposition)->Arg(32)->Arg(128);

void BM_PathshapePortfolio(benchmark::State& state) {
  const auto g =
      graph::make_path(static_cast<graph::NodeId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::best_path_decomposition(g));
  }
}
BENCHMARK(BM_PathshapePortfolio)->Arg(1 << 10)->Arg(1 << 13);

void BM_DiameterDoubleSweep(benchmark::State& state) {
  const auto side = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_grid2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::double_sweep_lower_bound(g));
  }
}
BENCHMARK(BM_DiameterDoubleSweep)->Arg(64)->Arg(256);

/// ConsoleReporter plus trajectory capture: every per-iteration run becomes
/// one harness cell keyed by benchmark name; timings and rates are loose
/// metrics by construction.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TrajectoryReporter(bench::Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      api::Record cell = {
          {"benchmark", run.benchmark_name()},
          {"real_time_ns", run.GetAdjustedRealTime()},
          {"cpu_time_ns", run.GetAdjustedCPUTime()},
      };
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        cell.push_back(
            {"items_per_second", static_cast<double>(items->second.value)});
      }
      harness_.add_cell(std::move(cell));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Harness& harness_;
};

}  // namespace

int main(int argc, char** argv) {
  // No banner: google-benchmark prints its own context block, and the
  // --benchmark_list_tests output is golden-pinned byte-for-byte.
  bench::Harness h("micro", "micro", /*title=*/"", /*claim=*/"", argc, argv,
                   /*allow_unknown_flags=*/true);

  // Rebuild an argv for google-benchmark: its own flags pass through
  // untouched, and --quick maps to a short per-benchmark min time so smoke
  // runs and the CI bench gate stay fast.
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  if (h.quick()) args.emplace_back("--benchmark_min_time=0.01");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) args.emplace_back(argv[i]);
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(args.size());
  for (auto& arg : args) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  TrajectoryReporter reporter(h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return h.finish();
}
