// bench_micro.cpp — google-benchmark micro suite (M0): throughput of the
// primitives every experiment is built from. Informational — these numbers
// bound how large the E1..E9 grids can go on a given machine.
//
// The custom main wires the suite onto bench::Harness: besides the usual
// --benchmark_* flags, --quick caps per-benchmark time, and --jsonl emits
// BENCH_micro.json (nav-bench-trajectory-v1, one cell per benchmark run,
// every metric wall-clock/loose — the deterministic surface of a timing
// suite is its registered series, which compare_bench.py tracks through
// added/removed-series reporting and the list golden pins byte-for-byte).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "nav/nav.hpp"
#include "runtime/alloc_counter.hpp"

// Counting allocator for the whole binary: the BFS-kernel cells report a
// deterministic allocs-per-query strict metric next to their (loose)
// throughput.
NAV_DEFINE_ALLOC_COUNTER();

namespace {

using namespace nav;

void BM_GraphBuildPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::make_path(n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphBuildPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_GraphBuildGnp(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::make_gnp(n, 8.0 / n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphBuildGnp)->Arg(1 << 12)->Arg(1 << 16);

void BM_BfsFull(benchmark::State& state) {
  const auto g = graph::make_grid2d(static_cast<graph::NodeId>(state.range(0)),
                                    static_cast<graph::NodeId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_BfsFull)->Arg(64)->Arg(256);

void BM_BallCollect(benchmark::State& state) {
  const auto g = graph::make_grid2d(256, 256);
  const auto radius = static_cast<graph::Dist>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ball(g, 256 * 128 + 128, radius));
  }
}
BENCHMARK(BM_BallCollect)->Arg(4)->Arg(16)->Arg(64);

void BM_SampleUniform(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::UniformScheme scheme(g);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(100, rng));
  }
}
BENCHMARK(BM_SampleUniform);

void BM_SampleBall(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::BallScheme scheme(g);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1 << 15, rng));
  }
}
BENCHMARK(BM_SampleBall);

void BM_SampleML(benchmark::State& state) {
  const auto g = graph::make_path(1 << 16);
  core::MLScheme scheme(g);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1 << 15, rng));
  }
}
BENCHMARK(BM_SampleML);

void BM_SampleTorusKleinberg(benchmark::State& state) {
  core::TorusKleinbergScheme scheme(256, 2.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sample_contact(1234, rng));
  }
}
BENCHMARK(BM_SampleTorusKleinberg);

void BM_RouteUniformPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_path(n);
  graph::TargetDistanceCache oracle(g, 2);
  routing::GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(6);
  (void)oracle.distances_to(n - 1);  // pre-warm: measure routing, not BFS
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng trial_rng = rng.child(trial++);
    benchmark::DoNotOptimize(router.route(0, n - 1, &scheme, trial_rng));
  }
}
BENCHMARK(BM_RouteUniformPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_RouteBallPath(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_path(n);
  graph::TargetDistanceCache oracle(g, 2);
  routing::GreedyRouter router(g, oracle);
  core::BallScheme scheme(g);
  Rng rng(7);
  (void)oracle.distances_to(n - 1);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng trial_rng = rng.child(trial++);
    benchmark::DoNotOptimize(router.route(0, n - 1, &scheme, trial_rng));
  }
}
BENCHMARK(BM_RouteBallPath)->Arg(1 << 12)->Arg(1 << 16);

void BM_RouteManyBatch(benchmark::State& state) {
  // Facade batch throughput: route a block of pairs through the engine's
  // thread pool (the api entry point big sweeps are built on).
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto engine = api::NavigationEngine::from_family("torus2d", 1 << 14);
  engine.use_scheme("uniform");
  const auto n = engine.graph().num_nodes();
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  Rng pair_rng(9);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto s = static_cast<graph::NodeId>(random_index(pair_rng, n));
    auto t = static_cast<graph::NodeId>(random_index(pair_rng, n));
    if (t == s) t = (t + 1) % n;
    pairs.emplace_back(s, t);
  }
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.route_many(pairs, Rng(round++)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_RouteManyBatch)->Arg(64)->Arg(512);

void BM_TreeDecomposition(benchmark::State& state) {
  Rng rng(8);
  const auto g =
      graph::make_random_tree(static_cast<graph::NodeId>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::tree_path_decomposition(g));
  }
}
BENCHMARK(BM_TreeDecomposition)->Arg(1 << 10)->Arg(1 << 14);

void BM_BfsLayerDecomposition(benchmark::State& state) {
  const auto side = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_grid2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::bfs_layer_decomposition(g));
  }
}
BENCHMARK(BM_BfsLayerDecomposition)->Arg(32)->Arg(128);

void BM_PathshapePortfolio(benchmark::State& state) {
  const auto g =
      graph::make_path(static_cast<graph::NodeId>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::best_path_decomposition(g));
  }
}
BENCHMARK(BM_PathshapePortfolio)->Arg(1 << 10)->Arg(1 << 13);

void BM_DiameterDoubleSweep(benchmark::State& state) {
  const auto side = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_grid2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::double_sweep_lower_bound(g));
  }
}
BENCHMARK(BM_DiameterDoubleSweep)->Arg(64)->Arg(256);

// ---- M1: BFS engine kernels ------------------------------------------------
// Hand-timed (not google-benchmark registered, so the --benchmark_list_tests
// golden stays untouched): each cell carries a deterministic allocs_per_query
// strict metric next to its loose nodes_per_sec, proving the engine kernels
// run allocation-free where the pre-engine reference pays per-call heap round
// trips. Families straddle the direction-optimizing regimes: torus2d (high
// diameter — the sweep stays top-down), hypercube and G(n,p) with mean degree
// 8 (low diameter, exploding frontiers — the sweep flips bottom-up).
void run_bfs_kernel_cells(bench::Harness& h) {
  using graph::Dist;
  using graph::NodeId;
  std::vector<unsigned> exponents{12, 16};
  if (!h.quick()) exponents.push_back(18);

  for (const unsigned e : exponents) {
    const auto n = NodeId{1} << e;
    for (const std::string& family :
         {std::string("torus2d"), std::string("hypercube"), std::string("gnp8"),
          std::string("regular16")}) {
      Rng rng(h.seed(0xB1F5) ^ e);
      graph::Graph g;
      if (family == "torus2d") {
        const auto side = NodeId{1} << (e / 2);
        g = graph::make_torus2d(side, n / side);
      } else if (family == "hypercube") {
        g = graph::make_hypercube(e);
      } else if (family == "gnp8") {
        g = graph::make_connected_gnp(n, 8.0 / static_cast<double>(n), rng);
      } else {
        // Diameter ~log n / log d: the frontier-explosion regime where the
        // bottom-up sweep pays off hardest.
        g = graph::make_random_regular(n, 16, rng);
      }

      auto& ws = graph::local_bfs_workspace();
      std::vector<Dist> out(g.num_nodes());
      const std::size_t reps = std::max<std::size_t>(
          4, (h.quick() ? (std::size_t{1} << 23) : (std::size_t{1} << 24)) / n);

      double ref_rate = 0.0;
      for (const std::string& kernel :
           {std::string("reference"), std::string("workspace"),
            std::string("diropt")}) {
        auto run_once = [&](std::size_t i) {
          // Rotate sources deterministically so no level structure is
          // accidentally cached between repetitions.
          const auto s =
              static_cast<NodeId>((i * 2654435761u) % g.num_nodes());
          if (kernel == "reference") {
            benchmark::DoNotOptimize(graph::bfs_distances_reference(g, s));
          } else if (kernel == "workspace") {
            ws.distances_into_scalar(g, s, out);
            benchmark::DoNotOptimize(out.data());
          } else {
            ws.distances_into(g, s, out);  // direction-optimizing full sweep
            benchmark::DoNotOptimize(out.data());
          }
        };
        run_once(0);  // warm: workspace growth, graph pages
        const std::uint64_t allocs_before = nav::allocation_count();
        run_once(1);
        const auto allocs_per_query =
            static_cast<double>(nav::allocation_count() - allocs_before);
        nav::Timer timer;
        for (std::size_t i = 0; i < reps; ++i) run_once(i);
        const double rate =
            static_cast<double>(g.num_nodes()) * static_cast<double>(reps) /
            timer.seconds();
        if (kernel == "reference") ref_rate = rate;
        const double speedup = ref_rate > 0.0 ? rate / ref_rate : 1.0;
        h.add_cell({{"family", family},
                    {"kernel", kernel},
                    {"n", static_cast<double>(g.num_nodes())},
                    {"nodes_per_sec", rate},
                    {"allocs_per_query", allocs_per_query},
                    {"speedup", speedup}});
        std::printf(
            "  %-9s n=2^%-2u %-10s %9.2f Mnodes/s  allocs/query %3.0f  x%.2f\n",
            family.c_str(), e, kernel.c_str(), rate / 1e6, allocs_per_query,
            speedup);
      }
    }
  }
}

// ---- M2: parallel BFS sweep ------------------------------------------------
// Hand-timed like M1 (the --benchmark_list_tests golden stays untouched):
// one scalar-baseline cell plus one cell per worker count, family x size x
// workers. allocs_per_query is the strict metric — a warm ParallelBfs must
// never touch the allocator at any width. nodes_per_sec and
// speedup_vs_scalar are loose: they depend on the machine's core count
// (compare_bench.py reports them informationally; the 8-core targets are
// checked on the nightly full run, not gated here). Families pick the two
// parallel regimes: torus2d keeps the sweep top-down (chunk-claimed frontier
// farming), gnp8 flips it bottom-up (lane-owned bitmap word ranges).
void run_parallel_bfs_cells(bench::Harness& h) {
  using graph::Dist;
  using graph::NodeId;
  std::vector<unsigned> exponents{18, 20};
  if (!h.quick()) exponents.push_back(22);
  const std::size_t worker_grid[] = {1, 2, 4, 8};

  for (const unsigned e : exponents) {
    const auto n = NodeId{1} << e;
    for (const std::string& family :
         {std::string("torus2d"), std::string("gnp8")}) {
      Rng rng(h.seed(0xB2F5) ^ e);
      graph::Graph g;
      if (family == "torus2d") {
        const auto side = NodeId{1} << (e / 2);
        g = graph::make_torus2d(side, n / side);
      } else {
        g = graph::make_connected_gnp(n, 8.0 / static_cast<double>(n), rng);
      }
      std::vector<Dist> out(g.num_nodes());
      const std::size_t reps = std::max<std::size_t>(
          2, (h.quick() ? (std::size_t{1} << 21) : (std::size_t{1} << 23)) / n);
      auto source_at = [&](std::size_t i) {
        return static_cast<NodeId>((i * 2654435761u) % g.num_nodes());
      };

      // Scalar baseline: the production serial path (direction-optimizing
      // workspace sweep) — the reference every parallel width is scored
      // against.
      auto& ws = graph::local_bfs_workspace();
      auto scalar_once = [&](std::size_t i) {
        ws.distances_into(g, source_at(i), out);
        benchmark::DoNotOptimize(out.data());
      };
      scalar_once(0);  // warm: workspace growth, graph pages
      const std::uint64_t scalar_allocs_before = nav::allocation_count();
      scalar_once(1);
      const auto scalar_allocs =
          static_cast<double>(nav::allocation_count() - scalar_allocs_before);
      nav::Timer scalar_timer;
      for (std::size_t i = 0; i < reps; ++i) scalar_once(i);
      const double scalar_rate = static_cast<double>(g.num_nodes()) *
                                 static_cast<double>(reps) /
                                 scalar_timer.seconds();
      h.add_cell({{"family", family},
                  {"kernel", std::string("scalar")},
                  {"n", static_cast<double>(g.num_nodes())},
                  {"workers", 1.0},
                  {"nodes_per_sec", scalar_rate},
                  {"allocs_per_query", scalar_allocs},
                  {"speedup_vs_scalar", 1.0}});
      std::printf(
          "  %-7s n=2^%-2u scalar      %9.2f Mnodes/s  allocs/query %3.0f\n",
          family.c_str(), e, scalar_rate / 1e6, scalar_allocs);

      for (const std::size_t workers : worker_grid) {
        graph::ParallelPolicy policy;
        policy.num_workers = workers;
        graph::ParallelBfs sweep(policy);
        auto parallel_once = [&](std::size_t i) {
          sweep.distances_into(g, source_at(i), out);
          benchmark::DoNotOptimize(out.data());
        };
        parallel_once(0);  // warm: lazy lane start + scratch growth
        const std::uint64_t allocs_before = nav::allocation_count();
        parallel_once(1);
        const auto allocs_per_query =
            static_cast<double>(nav::allocation_count() - allocs_before);
        nav::Timer timer;
        for (std::size_t i = 0; i < reps; ++i) parallel_once(i);
        const double rate = static_cast<double>(g.num_nodes()) *
                            static_cast<double>(reps) / timer.seconds();
        const double speedup = scalar_rate > 0.0 ? rate / scalar_rate : 1.0;
        h.add_cell({{"family", family},
                    {"kernel", std::string("parallel")},
                    {"n", static_cast<double>(g.num_nodes())},
                    {"workers", static_cast<double>(workers)},
                    {"nodes_per_sec", rate},
                    {"allocs_per_query", allocs_per_query},
                    {"speedup_vs_scalar", speedup}});
        std::printf(
            "  %-7s n=2^%-2u workers=%-2zu  %9.2f Mnodes/s  allocs/query %3.0f"
            "  x%.2f\n",
            family.c_str(), e, workers, rate / 1e6, allocs_per_query, speedup);
      }
    }
  }
}

// ---- M3: sweep-kind dispatch tallies ---------------------------------------
// Deterministic STRICT cells: for each family x size a fresh workspace runs a
// fixed mix of full and bounded sweeps, and the cell records how the engine's
// dispatcher (radius promotion + direction-optimizing thresholds) classified
// them, read back through BfsWorkspace::sweep_count(). Any change to the
// cutover heuristics shows up as a strict metric diff in compare_bench.py
// instead of a silent throughput cliff. The 2^8 size sits below
// kDiroptMinNodes, so the scalar-full kind is exercised alongside diropt and
// scalar-bounded.
void run_sweep_kind_cells(bench::Harness& h) {
  using graph::Dist;
  using graph::NodeId;
  using SweepKind = graph::BfsWorkspace::SweepKind;
  std::vector<unsigned> exponents{8, 12};
  if (!h.quick()) exponents.push_back(16);
  constexpr std::size_t kFullSweeps = 3;
  constexpr std::size_t kBoundedSweeps = 5;

  for (const unsigned e : exponents) {
    const auto n = NodeId{1} << e;
    for (const std::string& family :
         {std::string("torus2d"), std::string("hypercube"), std::string("gnp8"),
          std::string("regular16")}) {
      Rng rng(h.seed(0xB3F5) ^ e);
      graph::Graph g;
      if (family == "torus2d") {
        const auto side = NodeId{1} << (e / 2);
        g = graph::make_torus2d(side, n / side);
      } else if (family == "hypercube") {
        g = graph::make_hypercube(e);
      } else if (family == "gnp8") {
        g = graph::make_connected_gnp(n, 8.0 / static_cast<double>(n), rng);
      } else {
        g = graph::make_random_regular(n, 16, rng);
      }

      graph::BfsWorkspace ws;  // fresh instance: tallies start at zero
      std::vector<Dist> out(g.num_nodes());
      const auto source_at = [&](std::size_t i) {
        return static_cast<NodeId>((i * 2654435761u) % g.num_nodes());
      };
      for (std::size_t i = 0; i < kFullSweeps; ++i) {
        ws.distances_into(g, source_at(i), out);
      }
      for (std::size_t i = 0; i < kBoundedSweeps; ++i) {
        ws.distances_into(g, source_at(i), out, Dist{4});
      }

      const auto diropt =
          ws.sweep_count(SweepKind::kDirectionOptimizing);
      const auto scalar_full = ws.sweep_count(SweepKind::kScalarFull);
      const auto scalar_bounded = ws.sweep_count(SweepKind::kScalarBounded);
      h.add_cell({{"family", family},
                  {"kernel", std::string("dispatch")},
                  {"n", static_cast<double>(g.num_nodes())},
                  {"sweeps_diropt", static_cast<double>(diropt)},
                  {"sweeps_scalar_full", static_cast<double>(scalar_full)},
                  {"sweeps_scalar_bounded",
                   static_cast<double>(scalar_bounded)}});
      std::printf(
          "  %-9s n=2^%-2u dispatch   diropt %llu  scalar_full %llu"
          "  scalar_bounded %llu\n",
          family.c_str(), e, static_cast<unsigned long long>(diropt),
          static_cast<unsigned long long>(scalar_full),
          static_cast<unsigned long long>(scalar_bounded));
    }
  }
}

// ---- M4: landmark stretch vs k ---------------------------------------------
// Deterministic STRICT cells: for each family x size, every landmark budget k
// builds the compressed backend through make_oracle and scores the triangle
// bound against exact rows over a fixed pair sample — mean and max
// multiplicative stretch plus the fraction of pairs answered exactly.
// Landmark selection (farthest-point) and the pair sample are both seeded, so
// the quality surface is bit-reproducible; only the build time is loose. The
// compression story is implicit in the key: k rows stored versus n.
void run_landmark_stretch_cells(bench::Harness& h) {
  using graph::Dist;
  using graph::NodeId;
  std::vector<unsigned> exponents{10, 12};
  if (!h.quick()) exponents.push_back(14);
  const std::size_t k_grid[] = {2, 4, 8, 16, 32};
  constexpr std::size_t kTargets = 16;
  constexpr std::size_t kSourcesPerTarget = 16;

  for (const unsigned e : exponents) {
    const auto n = NodeId{1} << e;
    for (const std::string& family :
         {std::string("torus2d"), std::string("gnp8")}) {
      Rng rng(h.seed(0xB4F5) ^ e);
      graph::Graph g;
      if (family == "torus2d") {
        const auto side = NodeId{1} << (e / 2);
        g = graph::make_torus2d(side, n / side);
      } else {
        g = graph::make_connected_gnp(n, 8.0 / static_cast<double>(n), rng);
      }
      // The sample: kTargets exact rows, kSourcesPerTarget draws each. One
      // cache with headroom keeps every exact row resident across the k loop.
      graph::TargetDistanceCache exact(g, kTargets + 1);
      Rng pair_rng(h.seed(0xB4F6) ^ e);
      std::vector<NodeId> targets;
      for (std::size_t j = 0; j < kTargets; ++j) {
        targets.push_back(
            static_cast<NodeId>(random_index(pair_rng, g.num_nodes())));
      }

      for (const std::size_t k : k_grid) {
        const std::string spec = "landmark:" + std::to_string(k) + ":farthest";
        nav::Timer build_timer;
        const auto oracle = graph::make_oracle(spec, g);
        const double build_seconds = build_timer.seconds();

        double stretch_sum = 0.0, stretch_max = 0.0;
        std::size_t pairs = 0, exact_hits = 0;
        Rng source_rng(h.seed(0xB4F7) ^ e);
        for (const NodeId t : targets) {
          const auto row = oracle->distances_to(t);
          const auto truth = exact.distances_to(t);
          for (std::size_t i = 0; i < kSourcesPerTarget; ++i) {
            auto s = static_cast<NodeId>(
                random_index(source_rng, g.num_nodes() - 1));
            if (s >= t) ++s;  // s != t: stretch needs a non-zero denominator
            const double est = static_cast<double>((*row)[s]);
            const double ref = static_cast<double>((*truth)[s]);
            const double stretch = est / ref;
            stretch_sum += stretch;
            stretch_max = std::max(stretch_max, stretch);
            exact_hits += (*row)[s] == (*truth)[s] ? 1 : 0;
            ++pairs;
          }
        }
        const double denom = static_cast<double>(pairs);
        h.add_cell({{"family", family},
                    {"oracle", spec},
                    {"landmarks", static_cast<double>(k)},
                    {"n", static_cast<double>(g.num_nodes())},
                    {"mean_stretch", stretch_sum / denom},
                    {"max_stretch", stretch_max},
                    {"exact_fraction", static_cast<double>(exact_hits) / denom},
                    {"seconds", build_seconds}});
        std::printf(
            "  %-7s n=2^%-2u k=%-3zu  stretch mean %.4f  max %.2f"
            "  exact %4.1f%%  build %.3fs\n",
            family.c_str(), e, k, stretch_sum / denom, stretch_max,
            100.0 * static_cast<double>(exact_hits) / denom, build_seconds);
      }
    }
  }
}

/// ConsoleReporter plus trajectory capture: every per-iteration run becomes
/// one harness cell keyed by benchmark name; timings and rates are loose
/// metrics by construction.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TrajectoryReporter(bench::Harness& harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      api::Record cell = {
          {"benchmark", run.benchmark_name()},
          {"real_time_ns", run.GetAdjustedRealTime()},
          {"cpu_time_ns", run.GetAdjustedCPUTime()},
      };
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        cell.push_back(
            {"items_per_second", static_cast<double>(items->second.value)});
      }
      harness_.add_cell(std::move(cell));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Harness& harness_;
};

}  // namespace

int main(int argc, char** argv) {
  // No banner: google-benchmark prints its own context block, and the
  // --benchmark_list_tests output is golden-pinned byte-for-byte.
  bench::Harness h("micro", "micro", /*title=*/"", /*claim=*/"", argc, argv,
                   /*allow_unknown_flags=*/true);

  // The hand-timed BFS-kernel cells. Suppressed under --benchmark_list_tests:
  // that output is golden-pinned byte-for-byte and must stay pure.
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_list_tests", 22) == 0) {
      list_only = true;
    }
  }
  if (!list_only && h.section("M1: BFS engine kernels (family x size)")) {
    run_bfs_kernel_cells(h);
  }
  if (!list_only &&
      h.section("M2: parallel BFS sweep (family x size x workers)")) {
    run_parallel_bfs_cells(h);
  }
  if (!list_only &&
      h.section("M3: sweep-kind dispatch tallies (family x size)")) {
    run_sweep_kind_cells(h);
  }
  if (!list_only &&
      h.section("M4: landmark stretch (family x size x k)")) {
    run_landmark_stretch_cells(h);
  }
  // The google-benchmark cells below are recorded section-less: their series
  // keys ({benchmark: BM_*}) predate sections and stay baseline-aligned.
  h.end_section();

  // Rebuild an argv for google-benchmark: its own flags pass through
  // untouched, and --quick maps to a short per-benchmark min time so smoke
  // runs and the CI bench gate stay fast.
  std::vector<std::string> args;
  args.emplace_back(argv[0]);
  if (h.quick()) args.emplace_back("--benchmark_min_time=0.01");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) args.emplace_back(argv[i]);
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(args.size());
  for (auto& arg : args) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  TrajectoryReporter reporter(h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return h.finish();
}
