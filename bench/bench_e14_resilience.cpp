// bench_e14_resilience.cpp — E14: serving under injected faults — the
// availability surface of the degraded-mode stack.
//
// Claim under test: navigability is robust not just to a stale augmentation
// (E13) but to a *faulty serving stack*: with deterministic fault injection
// (resilience::FaultSpec — seeded stall/fail/slow schedules), bounded
// retries plus a landmark fallback tier keep >= 95% of pairs served under
// fail:0.05 + stall:0.05 chaos; the AIMD admission controller converges on
// its virtual-sojourn SLO under overload and recovers additively when load
// thins; and a parallel BFS sweep that loses worker lanes mid-sweep still
// produces bit-identical distance slabs.
//
// Three sections:
//   1. E14a — availability surface: fault-spec grid × degraded-mode posture
//      (tolerate-only vs landmark fallback chain). Every cell is a fresh
//      faulted stack (the fault schedule's attempt counters replay from
//      zero), so the exact/degraded/failed split, retry rounds, fallback
//      pairs, and injected-fault tallies are all seed-deterministic.
//   2. E14b — AIMD admission under virtual overload: a TrafficDriver closes
//      the loop around RouteService with AdmissionPolicy::kAdaptive and a
//      dyadic virtual pair cost; an overload burst shrinks the window
//      (p99 over SLO), a paced arrival schedule keeps it growing. Virtual
//      sojourn quantiles are exact doubles — a pinned surface.
//   3. E14c — lane loss under ParallelBfs: countdown lane failures fire
//      mid-sweep and the coordinator covers the failed ranges; the slab
//      hash must equal the scalar engine's, healthy or degraded.
//
// BENCH_e14.json: with --jsonl the harness writes the consolidated
// nav-bench-trajectory-v1 document (pinned by the bench golden test; the
// wall-clock fields are masked there).
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"

namespace {

using namespace nav;

using Pair = std::pair<graph::NodeId, graph::NodeId>;

/// Deterministic batch: targets cycle through a small distinct pool (so the
/// prefetch waves shard), sources draw from the seeded stream.
std::vector<Pair> mixed_pairs(graph::NodeId n, std::size_t count,
                              std::size_t distinct_targets,
                              std::uint64_t seed) {
  std::vector<Pair> pairs;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto t = static_cast<graph::NodeId>(i % distinct_targets);
    auto s = static_cast<graph::NodeId>(random_index(rng, n));
    if (s == t) s = (s + 1) % n;
    pairs.emplace_back(s, t);
  }
  return pairs;
}

/// FNV-1a over a distance slab: the bit-identity fingerprint E14c pins.
std::uint64_t slab_hash(const std::vector<graph::Dist>& slab) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto d : slab) {
    h ^= static_cast<std::uint64_t>(d);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("e14", "e14_resilience",
                   "E14 — resilience: fault injection, degraded-mode "
                   "routing, adaptive admission, lane loss",
                   "bounded retries + a landmark fallback tier keep >= 95% "
                   "of pairs served under fail:0.05+stall:0.05 chaos; the "
                   "AIMD controller tracks its virtual-sojourn SLO under "
                   "overload and grows the window when load thins; parallel "
                   "sweeps that lose lanes mid-sweep stay bit-identical",
                   argc, argv);
  h.group_by({"faults", "posture"});

  // ---- 1. availability surface: fault grid × degraded-mode posture -------
  if (h.section("E14a: availability surface (fault spec x posture)")) {
    const graph::NodeId n = h.quick() ? 400 : 1600;
    const std::size_t pair_count = h.quick() ? 192 : 768;
    const std::size_t distinct = h.quick() ? 32 : 96;
    const std::vector<std::string> fault_specs =
        h.quick() ? std::vector<std::string>{"none", "stall:0.05", "fail:0.05",
                                             "fail:0.05:stall:0.05",
                                             "fail:0.9"}
                  : std::vector<std::string>{"none", "stall:0.05", "fail:0.05",
                                             "fail:0.05:stall:0.05",
                                             "fail:0.25", "fail:0.9",
                                             "fail:0.25:slow:0.5:200"};
    // Two degraded-mode postures: tolerate-only (failed targets become
    // kFailed rows) vs the full fallback chain (landmark tier catches what
    // retries could not).
    const std::vector<std::string> postures = {"tolerate", "fallback"};

    Rng graph_rng(h.seed(0xE14A));
    const graph::Graph g = graph::family("grid2d").make(n, graph_rng);
    Rng scheme_rng(h.seed(0x5c4e));
    const auto scheme = core::make_scheme("ball", g, scheme_rng);
    const auto pairs = mixed_pairs(g.num_nodes(), pair_count, distinct,
                                   h.seed(0xAB));
    // The fallback tier is fault-free and approximate; its router reads
    // exact() = false at construction and routes stall-tolerantly.
    const auto landmark = graph::make_oracle("landmark:8", g);
    const auto landmark_router = routing::make_router("greedy", g, *landmark);

    for (const auto& posture : postures) {
      Table table({"faults", "exact", "degraded", "failed", "avail",
                   "retries", "fallback", "injected", "stalled"});
      for (const auto& spec : fault_specs) {
        nav::Timer timer;
        // "none" still goes through the decorator at rate 0 — the fault-free
        // transparency cell (identical to an undecorated run).
        const std::string oracle_spec =
            spec == "none"
                ? "faulty:cache:40:fail:0:seed:5"
                : "faulty:cache:40:" + spec + ":seed:5";
        // Fresh stack per cell: the fault schedule's attempt counters
        // replay from zero, so every tally below is seed-deterministic.
        const auto oracle = graph::make_oracle(oracle_spec, g);
        const auto router = routing::make_router("greedy", g, *oracle);
        api::RouteServiceOptions options;
        if (posture == "fallback") {
          options.resilience.fallback_oracle = landmark.get();
          options.resilience.fallback_router = landmark_router.get();
        } else {
          options.resilience.tolerate_faults = true;
        }
        const api::RouteService service(g, *oracle, scheme.get(), *router,
                                        options);
        const auto report = service.route_batch_report(pairs, Rng(42));
        NAV_REQUIRE(report.results.size() == pairs.size(),
                    "a faulted batch did not complete");
        const double availability =
            static_cast<double>(report.exact_pairs + report.degraded_pairs) /
            static_cast<double>(pairs.size());
        // The acceptance bar: under the chaos spec, >= 95% of pairs served.
        if (spec == "fail:0.05:stall:0.05") {
          NAV_REQUIRE(availability >= 0.95,
                      "chaos availability fell below 95%");
        }
        const auto* faulty =
            dynamic_cast<const resilience::FaultyOracle*>(oracle.get());
        NAV_REQUIRE(faulty != nullptr, "faulty: spec built no decorator");

        table.add_row({spec, Table::integer(report.exact_pairs),
                       Table::integer(report.degraded_pairs),
                       Table::integer(report.failed_pairs),
                       Table::num(availability, 4),
                       Table::integer(report.retries),
                       Table::integer(report.fallback_pairs),
                       Table::integer(faulty->injected_failures()),
                       Table::integer(faulty->stalled_rows())});
        h.add_cell({{"experiment", std::string("e14_resilience")},
                    {"faults", spec},
                    {"posture", posture},
                    {"n", static_cast<std::uint64_t>(g.num_nodes())},
                    {"pairs", static_cast<std::uint64_t>(pairs.size())},
                    {"exact_pairs",
                     static_cast<std::uint64_t>(report.exact_pairs)},
                    {"degraded_pairs",
                     static_cast<std::uint64_t>(report.degraded_pairs)},
                    {"failed_pairs",
                     static_cast<std::uint64_t>(report.failed_pairs)},
                    {"availability", availability},
                    {"retries", static_cast<std::uint64_t>(report.retries)},
                    {"fallback_pairs",
                     static_cast<std::uint64_t>(report.fallback_pairs)},
                    {"injected_failures", faulty->injected_failures()},
                    {"stalled_rows", faulty->stalled_rows()},
                    {"injected_slow_micros", faulty->injected_slow_micros()},
                    {"seconds", timer.seconds()}});
      }
      std::cout << "posture=" << posture << "\n" << table.to_ascii();
    }
  }

  // ---- 2. AIMD admission under virtual overload ---------------------------
  if (h.section("E14b: adaptive admission (AIMD vs virtual-sojourn SLO)")) {
    const graph::NodeId n = h.quick() ? 256 : 1024;
    const std::size_t batch_size = 32;
    const std::size_t batches = h.quick() ? 8 : 24;
    // Dyadic virtual cost: every sojourn below is an exact double, so the
    // quantiles are a pinnable surface (unlike wall-clock sojourns).
    const double pair_cost = 0.0078125;  // 2^-7 s: 32 pairs = 0.25 s
    struct Regime {
      const char* name;
      const char* schedule;  // arrival schedule handed to the driver
      double slo_seconds;
    };
    // Overload: every batch arrives at vtime 0, so queue wait blows the
    // tight SLO and the window halves to its floor. Paced: arrivals spaced
    // at exactly one batch's service time keep sojourn == service cost,
    // under the loose SLO — the window grows additively every batch.
    const std::vector<Regime> regimes = {
        {"overload", "burst:64:0.0", 0.05},
        {"paced", "burst:1:0.25", 0.5},
    };

    Rng graph_rng(h.seed(0xE14B));
    const graph::Graph g = graph::family("torus2d").make(n, graph_rng);
    Rng scheme_rng(h.seed(0xba11));
    const auto scheme = core::make_scheme("ball", g, scheme_rng);
    const auto oracle = graph::make_oracle("auto", g);
    const auto router = routing::make_router("greedy", g, *oracle);

    Table table({"regime", "slo", "admitted", "rejected", "breaches",
                 "p99 ok", "window", "sojourn p50", "sojourn p99"});
    for (const auto& regime : regimes) {
      nav::Timer timer;
      api::RouteServiceOptions options;
      options.virtual_pair_cost_seconds = pair_cost;
      options.admission = api::AdmissionPolicy::adaptive(regime.slo_seconds);
      options.admission.adaptive_start_pairs = 64;
      options.admission.adaptive_min_pairs = 16;
      options.admission.adaptive_increase_pairs = 16;
      api::RouteService service(g, *oracle, scheme.get(), *router, options);
      const auto demand =
          workload::make_workload("uniform", g, Rng(h.seed(0xE14B)));
      workload::TrafficOptions traffic;
      traffic.schedule = regime.schedule;
      traffic.batches = batches;
      traffic.batch_size = batch_size;
      workload::TrafficDriver driver(service, *demand, traffic);
      const auto report = driver.run(Rng(h.seed(0xD82)));
      NAV_REQUIRE(report.adaptive, "adaptive run did not report its verdict");
      if (std::string(regime.name) == "overload") {
        NAV_REQUIRE(!report.p99_under_slo && report.pairs_rejected > 0,
                    "overload failed to trip the AIMD controller");
      } else {
        NAV_REQUIRE(report.p99_under_slo && report.pairs_rejected == 0,
                    "paced arrivals tripped the AIMD controller");
      }

      table.add_row({regime.name, Table::num(regime.slo_seconds, 2),
                     Table::integer(report.pairs_admitted),
                     Table::integer(report.pairs_rejected),
                     Table::integer(report.slo_breaches),
                     report.p99_under_slo ? "yes" : "no",
                     Table::integer(report.adaptive_window_pairs),
                     Table::num(report.sojourn_v_ms.p50, 3),
                     Table::num(report.sojourn_v_ms.p99, 3)});
      h.add_cell({{"experiment", std::string("e14_resilience")},
                  {"regime", std::string(regime.name)},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"batches", static_cast<std::uint64_t>(batches)},
                  {"batch_size", static_cast<std::uint64_t>(batch_size)},
                  {"slo_seconds", regime.slo_seconds},
                  {"pairs_admitted",
                   static_cast<std::uint64_t>(report.pairs_admitted)},
                  {"pairs_rejected",
                   static_cast<std::uint64_t>(report.pairs_rejected)},
                  {"slo_breaches",
                   static_cast<std::uint64_t>(report.slo_breaches)},
                  {"p99_under_slo",
                   static_cast<std::uint64_t>(report.p99_under_slo ? 1 : 0)},
                  {"adaptive_window_pairs",
                   static_cast<std::uint64_t>(report.adaptive_window_pairs)},
                  {"sojourn_v_ms_p50", report.sojourn_v_ms.p50},
                  {"sojourn_v_ms_p99", report.sojourn_v_ms.p99},
                  {"hops_p50", report.hops.p50},
                  {"hops_p95", report.hops.p95},
                  {"seconds", timer.seconds()}});
    }
    std::cout << table.to_ascii();
  }

  // ---- 3. lane loss: parallel sweeps stay bit-identical -------------------
  if (h.section("E14c: lane loss (ParallelBfs slab identity)")) {
    const graph::NodeId side = h.quick() ? 48 : 96;
    const auto g = graph::make_grid2d(side, side);
    graph::BfsWorkspace scalar;
    std::vector<graph::Dist> expect(g.num_nodes());
    scalar.distances_into_scalar(g, 0, expect);
    const std::uint64_t expect_hash = slab_hash(expect);

    graph::ParallelPolicy policy;
    policy.num_workers = 4;
    policy.serial_frontier_cutoff = 1;  // parallel dispatch every level
    policy.min_diropt_nodes = 1;
    graph::ParallelBfs sweep(policy);
    std::vector<graph::Dist> got(g.num_nodes());

    struct Mode {
      const char* name;
      std::size_t fail_lane;        // 0 = none
      std::size_t after_dispatches;  // countdown before the failure fires
    };
    const std::vector<Mode> modes = {
        {"healthy", 0, 0},
        {"lane3_mid_sweep", 3, 5},
        {"lane3_and_lane1", 1, 0},  // lane 3 still failed from the prior run
        {"healed", 0, 0},
    };

    Table table({"mode", "failed lanes", "slab hash", "identical"});
    for (const auto& mode : modes) {
      nav::Timer timer;
      if (std::string(mode.name) == "healed") sweep.team().heal_lanes();
      if (mode.fail_lane != 0) {
        sweep.team().fail_lane(mode.fail_lane, mode.after_dispatches);
      }
      sweep.distances_into(g, 0, got);
      const std::uint64_t got_hash = slab_hash(got);
      const bool identical = got == expect;
      NAV_REQUIRE(identical, "lane loss changed a parallel BFS slab");

      table.add_row({mode.name, Table::integer(sweep.team().failed_lanes()),
                     std::to_string(got_hash), identical ? "yes" : "no"});
      h.add_cell({{"experiment", std::string("e14_resilience")},
                  {"mode", std::string(mode.name)},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"failed_lanes",
                   static_cast<std::uint64_t>(sweep.team().failed_lanes())},
                  {"slab_hash", got_hash},
                  {"scalar_hash", expect_hash},
                  {"identical", static_cast<std::uint64_t>(identical ? 1 : 0)},
                  {"seconds", timer.seconds()}});
    }
    std::cout << table.to_ascii()
              << "(every degraded sweep's slab hashed identical to the "
                 "scalar engine's)\n";
  }
  return h.finish();
}
