// bench_e3_ml_scheme.cpp — Experiment E3: Theorem 2's (M, L) scheme.
//
// Claim (Theorem 2 + Corollary 1): with M = (A+U)/2 and the max-level bag
// labeling L of a path decomposition, greedy routing takes
// O(min{ps(G)·log² n, sqrt n}) steps. On families with small pathshape
// (path: ps=1, caterpillar: ps<=2, interval: ps<=1, permutation: ps<=2,
// trees: ps = O(log n)) this is polylog — flat-ish exponent on log-log —
// while uniform stays at ~n^0.5 on the same instances. On a large-pathshape
// family (random_regular, used here as the stress case) (M,L) falls back to
// the sqrt-n / diameter envelope and never does worse than uniform by more
// than a constant.
#include "harness.hpp"

namespace {

using namespace nav;

/// Corollary 1's AT-free cases use the *model-certified* decompositions
/// (interval clique path: length <= 1; permutation cuts: length <= 2) — the
/// generic portfolio cannot see the models, so this path is hand-rolled.
void run_certified_atfree(bench::Harness& h, const std::string& which,
                          unsigned hi_exp) {
  Table table({"family", "scheme", "n", "m", "ps-cert", "greedy-diam", "ci95"});
  std::vector<double> ns, ml_steps, uniform_steps;
  for (unsigned e = 9; e <= hi_exp; ++e) {
    const graph::NodeId n = graph::NodeId{1} << e;
    Rng rng(h.seed(0xE3A) + e);
    graph::Graph g;
    decomp::PathDecomposition pd;
    if (which == "interval") {
      const auto model = graph::connected_random_interval_model(n, rng);
      g = model.to_graph();
      pd = decomp::interval_decomposition(model);
    } else {
      const auto model = graph::banded_permutation_model(n, 8, rng);
      g = model.to_graph();
      pd = decomp::permutation_decomposition(model);
    }
    const auto measures = decomp::measure_capped(g, pd, 1u << 20);
    core::MLScheme ml(g, pd);
    core::UniformScheme uniform(g);

    graph::TargetDistanceCache oracle(g, 16);
    routing::TrialConfig trials;
    trials.num_pairs = 10;
    trials.resamples = 12;
    const auto run = [&](const core::AugmentationScheme& scheme,
                         std::vector<double>& out) {
      const auto est = routing::estimate_greedy_diameter(
          g, &scheme, oracle, trials, Rng(h.seed(0x7E3) ^ e));
      table.add_row({which, scheme.name(), Table::integer(g.num_nodes()),
                     Table::integer(g.num_edges()),
                     Table::integer(measures.shape),
                     Table::num(est.max_mean_steps, 1),
                     Table::num(est.max_ci_halfwidth, 1)});
      h.add_cell({{"family", which},
                  {"scheme", scheme.name()},
                  {"n", static_cast<std::uint64_t>(g.num_nodes())},
                  {"m", static_cast<std::uint64_t>(g.num_edges())},
                  {"ps_cert", static_cast<std::uint64_t>(measures.shape)},
                  {"greedy_diameter", est.max_mean_steps},
                  {"ci95", est.max_ci_halfwidth}});
      out.push_back(est.max_mean_steps);
    };
    run(uniform, uniform_steps);
    run(ml, ml_steps);
    ns.push_back(g.num_nodes());
  }
  std::cout << table.to_ascii();
  std::cout << "exponents: uniform "
            << Table::num(fit_power_law(ns, uniform_steps).slope, 3) << ", ml "
            << Table::num(fit_power_law(ns, ml_steps).slope, 3) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nav;
  bench::Harness h("e3", "e3_ml_scheme",
                   "E3: Theorem 2 — (M,L) routes small-pathshape families in "
                   "polylog",
                   "greedy diameter of (G,(M,L)) is "
                   "O(min{ps(G) log^2 n, sqrt n})",
                   argc, argv);
  h.group_by({"scheme", "family"});

  struct FamilyCase {
    const char* family;
    unsigned hi_exp;
    const char* expectation;
  };
  const unsigned big = h.quick() ? 12 : 16;
  const unsigned mid = h.quick() ? 11 : 13;
  const FamilyCase cases[] = {
      {"path", big, "ps=1: ml exponent well below uniform's ~0.5"},
      {"caterpillar", big, "ps<=2: same"},
      {"random_tree", h.quick() ? 12u : 15u,
       "ps=O(log n): polylog (Cor. 1: log^3)"},
      {"random_regular", mid, "large ps: min{} falls back, ml ~ uniform"},
  };

  for (const auto& c : cases) {
    if (!h.section(std::string("E3: ml vs uniform on ") + c.family)) continue;
    std::cout << "expectation: " << c.expectation << "\n";
    h.run_and_print(api::Experiment::on(c.family)
                        .sizes(bench::pow2_sizes(9, c.hi_exp))
                        .schemes({"uniform", "ml"})
                        .pairs(10)
                        .resamples(12)
                        .seed(h.seed(0xE3)));
  }

  // Corollary 1's AT-free exemplars with certified decompositions.
  for (const auto* which : {"interval", "permutation"}) {
    if (!h.section(std::string("E3: ml (certified decomposition) vs uniform "
                               "on ") +
                   which))
      continue;
    run_certified_atfree(h, which, mid);
  }

  if (h.section("E3 summary")) {
    std::cout
        << "PASS criteria: (1) on path and caterpillar (ps <= 2, sparse) the ml\n"
           "exponent is at least 0.15 below uniform's and ml wins outright at\n"
           "the largest sizes; (2) on random_tree both ride the small-diameter\n"
           "cap with ml <= uniform at the top sizes; (3) on interval and\n"
           "permutation the certified ps stays <= 2 and ml's measured values\n"
           "sit far below the ps·log^2 n bound — but connectivity forces these\n"
           "random models to be dense (avg degree ~ 2 log n), which shrinks\n"
           "uniform's constant (balls grow ~ deg·r), so the asymptotic ml-vs-\n"
           "uniform crossover lies beyond the simulated window there; (4) on\n"
           "random_regular both schemes ride the logarithmic diameter cap.\n"
           "All of (1)-(4) instantiate O(min{ps log^2 n, sqrt n}).\n";
  }
  return h.finish();
}
