// p2p_overlay.cpp — designing a navigable peer-to-peer overlay.
//
// Scenario: a DHT-flavoured overlay where peers sit on a base ring (cycle)
// with successor links, and each peer maintains exactly ONE extra "finger".
// Lookups are greedy: forward to the neighbour (ring or finger) closest to
// the key's owner. The question a systems designer asks: *how should the one
// finger be chosen?*
//
//   * uniform finger       -> Theta(sqrt n) lookups (the sqrt-n barrier);
//   * Theorem 2 (M,L)      -> polylog lookups (ring has pathshape 1);
//   * Theorem 4 ball       -> Õ(n^{1/3}) lookups with *zero* metadata beyond
//                             local ball sampling — and it works on any
//                             topology, not just rings (universality);
//   * kleinberg a=1        -> the 1-dimensional harmonic optimum, as the
//                             tuned-but-dimension-aware baseline.
//
// Usage: ./p2p_overlay [n=16384] [lookups=200]
#include <cstdlib>
#include <iostream>

#include "nav/nav.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const graph::NodeId n = argc > 1
      ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
      : 16384;
  const std::size_t lookups = argc > 2
      ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
      : 200;

  api::EngineOptions options;
  options.cache_capacity = 64;
  auto engine = api::NavigationEngine::from_family("cycle", n, 7001, options);
  std::cout << "overlay base ring: " << engine.graph().summary() << "\n\n";

  routing::TrialConfig trials;
  trials.num_pairs = std::max<std::size_t>(4, lookups / 16);
  trials.resamples = 16;

  Table table({"finger policy", "lookup hops (max pair)", "mean hops",
               "build+run sec"});
  for (const auto& spec : {"uniform", "ml", "ball", "kleinberg:1.0"}) {
    Timer timer;
    engine.use_scheme(spec, /*scheme_seed=*/7001);
    const auto est =
        engine.estimate_diameter(trials, Rng(std::string(spec).size()));
    table.add_row({spec,
                   Table::with_ci(est.max_mean_steps, est.max_ci_halfwidth, 1),
                   Table::num(est.overall_mean_steps, 1),
                   Table::num(timer.seconds(), 2)});
  }
  std::cout << table.to_ascii() << "\n";
  std::cout << "Reading the table: uniform pays ~sqrt(n) hops; the (M,L) and\n"
               "harmonic fingers exploit the ring's line structure for polylog\n"
               "lookups; the ball finger needs no structural knowledge at all\n"
               "and still beats the sqrt(n) barrier (Theorem 4).\n";
  return 0;
}
