// route_server.cpp — the always-on batch routing engine under a workload.
//
// Models a routing service under sustained, possibly skewed load: a
// workload::TrafficDriver generates (source, target) demand from a named
// demand model, submits it to an api::RouteService as an open-loop burst
// process, and the service queues batches on its service thread under a
// configurable admission policy — Unbounded FIFO, Bounded backpressure, or
// deadline Shedding.
//
//   ./route_server [n] [batches] [workload] [admission]
//
//   n          graph size (torus2d), default 8192
//   batches    batches to submit, default 12 (x 256 pairs each)
//   workload   any workload::make_workload spec, default "zipf:1.1"
//              (uniform | zipf:<s> | local:<r> | adversarial |
//               hotset:<k>:<p> | trace:<path>)
//   admission  unbounded | bounded:<max_queued_pairs> | shed:<seconds>
//
// Output: one line per batch (queue depth at submit, sojourn, status) plus
// hop/latency percentiles and the admission counters.
#include <iostream>
#include <string>

#include "nav/nav.hpp"

namespace {

// Strict parsing throughout: "bounded:abc" must be an error rather than
// bounded(0), and "16k" must not silently run as n=16.
nav::api::AdmissionPolicy parse_admission(const std::string& spec) {
  using nav::api::AdmissionPolicy;
  const auto tokens = nav::split_spec(spec);
  if (tokens.front() == "unbounded" && tokens.size() == 1) {
    return AdmissionPolicy::unbounded();
  }
  if (tokens.front() == "bounded" && tokens.size() == 2) {
    return AdmissionPolicy::bounded(
        nav::parse_spec_number<std::size_t>(tokens[1], spec));
  }
  if (tokens.front() == "shed" && tokens.size() == 2) {
    return AdmissionPolicy::shed(
        nav::parse_spec_number<double>(tokens[1], spec));
  }
  throw std::invalid_argument("admission must be unbounded | bounded:<pairs> "
                              "| shed:<seconds>, got: " +
                              spec);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace nav;
  const auto n =
      argc > 1 ? parse_spec_number<graph::NodeId>(argv[1], argv[1])
               : graph::NodeId{8192};
  const std::size_t num_batches =
      argc > 2 ? parse_spec_number<std::size_t>(argv[2], argv[2]) : 12;
  const std::string workload_spec = argc > 3 ? argv[3] : "zipf:1.1";
  const std::string admission_spec = argc > 4 ? argv[4] : "unbounded";

  // Cache-oracle regime on purpose: n above the dense limit is where target
  // sharding earns its keep — and skewed demand (the zipf default) is where
  // one BFS serves the most pairs.
  auto engine = api::NavigationEngine::from_family("torus2d", n);
  engine.use_scheme("ball");
  api::RouteServiceOptions options;
  options.admission = parse_admission(admission_spec);
  api::RouteService service(engine, options);

  const auto demand = engine.make_workload(workload_spec, 2026);
  workload::TrafficOptions traffic;
  traffic.schedule = "burst:4:0.0";  // four simultaneous batches per wave
  traffic.batches = num_batches;
  traffic.batch_size = 256;
  traffic.keep_results = true;  // feeds the hop histogram below
  workload::TrafficDriver driver(service, *demand, traffic);

  std::cout << "route_server: torus2d n=" << engine.graph().num_nodes()
            << ", scheme=ball, router=greedy, workload=" << demand->name()
            << ", admission=" << admission_spec << ", "
            << nav::global_pool().thread_count() << " pool threads\n\n";

  const auto report = driver.run(Rng(2026));
  std::cout << report.table().to_ascii();

  // Binned view of the hop distribution: the streaming-friendly variant of
  // the report's exact quantiles (Histogram::percentile interpolates inside
  // the crossing bin, so binned p95 tracks report.hops.p95).
  if (report.hops.count > 0) {
    Histogram hop_histogram(0.0, report.hops.max + 1.0,
                            std::min<std::size_t>(
                                12, static_cast<std::size_t>(
                                        report.hops.max) + 1));
    for (const auto& batch : report.results) {
      for (const auto& route : batch) {
        hop_histogram.add(static_cast<double>(route.steps));
      }
    }
    std::cout << "\nhop distribution (binned p95 ~ "
              << Table::num(hop_histogram.percentile(0.95), 1) << "):\n"
              << hop_histogram.render(40);
  }

  std::cout << "\nhops: p50=" << Table::num(report.hops.p50, 1)
            << "  p95=" << Table::num(report.hops.p95, 1)
            << "  p99=" << Table::num(report.hops.p99, 1)
            << "  max=" << Table::num(report.hops.max, 0)
            << "\nsojourn ms: p50=" << Table::num(report.sojourn_ms.p50, 2)
            << "  p95=" << Table::num(report.sojourn_ms.p95, 2)
            << "  p99=" << Table::num(report.sojourn_ms.p99, 2) << "\n";
  std::cout << "admission: " << report.pairs_admitted << " admitted, "
            << report.pairs_shed << " shed, "
            << report.queue.blocked_submits << " blocked submits, peak queue "
            << report.queue.peak_queued_pairs << " pairs\n";
  const auto totals = service.totals();
  std::cout << "service totals: " << totals.batches << " batches, "
            << totals.pairs << " routes, "
            << Table::num(totals.seconds, 2) << "s batch execution, "
            << Table::num(static_cast<double>(totals.pairs) /
                              std::max(totals.seconds, 1e-9),
                          0)
            << " routes/sec\n";
  return 0;
} catch (const std::exception& error) {
  // Bad CLI arguments (unknown workload/admission spec, unreadable trace)
  // surface as a one-line error, matching sweep_cli.
  std::cerr << "error: " << error.what() << "\n";
  return 1;
}
