// route_server.cpp — the always-on batch routing engine under a workload.
//
// Models a routing service under sustained, possibly skewed load: a
// workload::TrafficDriver generates (source, target) demand from a named
// demand model, submits it to an api::RouteService as an open-loop burst
// process, and the service queues batches on its service thread under a
// configurable admission policy — Unbounded FIFO, Bounded backpressure, or
// deadline Shedding.
//
//   ./route_server [n] [batches] [workload] [admission]
//                  [--mutations <spec>] [--oracle <spec>] [--faults <spec>]
//
//   n          graph size (torus2d), default 8192
//   batches    batches to submit, default 12 (x 256 pairs each)
//   workload   any workload::make_workload spec, default "zipf:1.1"
//              (uniform | zipf:<s> | local:<r> | adversarial |
//               hotset:<k>:<p> | trace:<path>)
//   admission  unbounded | bounded:<max_queued_pairs> | shed:<seconds>
//              | adaptive:<slo_seconds>. shed and adaptive run in VIRTUAL
//              time here (50us per pair), so their drop decisions are
//              deterministic across runs and machines; adaptive drives the
//              AIMD admission window against the given sojourn SLO.
//
//   --mutations <spec>  perturb the graph between batches
//              (churn:<rate> | fail:<fraction> | targeted:<k> |
//               trace:<path> | none). Mutations close the driver loop
//              (each batch is collected before the graph changes), so the
//              queue never builds and bounded/shed admission would never
//              engage: a non-"none" spec is mutually exclusive with a
//              non-unbounded admission policy, checked up front.
//   --oracle <spec>  distance backend for the static run
//              (auto | matrix[:width] | cache[:cap][:width] |
//               landmark:<k>[:sel] — see graph::make_oracle). A custom
//              backend is built once on the static graph and cannot track
//              mutations, so a non-"auto" spec is mutually exclusive with
//              a non-"none" --mutations, checked up front.
//   --faults <spec>  deterministic chaos: wrap the serving oracle in a
//              resilience::FaultyOracle ("stall:<p>", "fail:<p>",
//              "slow:<p>:<us>", "seed:<n>", combinable with ':', or none).
//              Faulted runs get a degraded-mode fallback chain — landmark:16
//              oracle + inexact greedy router — plus bounded retries, and
//              report a "resilience:" summary line. Composes with
//              --mutations (faults wrap the dynamic oracle) and --oracle.
//   --metrics-out <path>  scrape the process-wide obs registry after the
//              run and write it in Prometheus text format ("-" = stdout).
//   --trace-out <path>    enable NAV_TRACE span collection for the run and
//              write the spans as chrome://tracing JSON (load in
//              chrome://tracing or https://ui.perfetto.dev).
//
// The whole stack runs on the dynamic subsystem: the graph lives in an
// epoch-versioned dynamic::DynamicGraph and distances come from a
// dynamic::DynamicOracle that invalidates exactly the cached targets each
// mutation can affect — in the static case (no --mutations) that reduces
// to the classic matrix/cache oracle, in the mutating case the
// invalidation counters are reported after the run.
//
// Output: one line per batch (queue depth at submit, sojourn, status) plus
// hop/latency percentiles and the admission counters.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "nav/nav.hpp"

namespace {

// Strict parsing throughout: "bounded:abc" must be an error rather than
// bounded(0), and "16k" must not silently run as n=16.
nav::api::AdmissionPolicy parse_admission(const std::string& spec) {
  using nav::api::AdmissionPolicy;
  const auto tokens = nav::split_spec(spec);
  if (tokens.front() == "unbounded" && tokens.size() == 1) {
    return AdmissionPolicy::unbounded();
  }
  if (tokens.front() == "bounded" && tokens.size() == 2) {
    return AdmissionPolicy::bounded(
        nav::parse_spec_number<std::size_t>(tokens[1], spec));
  }
  if (tokens.front() == "shed" && tokens.size() == 2) {
    return AdmissionPolicy::shed(
        nav::parse_spec_number<double>(tokens[1], spec));
  }
  if (tokens.front() == "adaptive" && tokens.size() == 2) {
    return AdmissionPolicy::adaptive(
        nav::parse_spec_number<double>(tokens[1], spec));
  }
  throw std::invalid_argument("admission must be unbounded | bounded:<pairs> "
                              "| shed:<seconds> | adaptive:<slo_seconds>, "
                              "got: " +
                              spec);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace nav;
  // Flags take a value; everything else stays positional.
  std::vector<std::string> positional;
  std::string mutation_spec = "none";
  std::string oracle_spec = "auto";
  std::string fault_spec = "none";
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&](const char* usage) {
      if (i + 1 >= argc) throw std::invalid_argument(usage);
      return std::string(argv[++i]);
    };
    if (arg == "--mutations") {
      mutation_spec = flag_value(
          "--mutations needs a spec: churn:<rate> | fail:<fraction> | "
          "targeted:<k> | trace:<path> | none");
    } else if (arg == "--oracle") {
      oracle_spec = flag_value(
          "--oracle needs a spec: auto | matrix[:width] | "
          "cache[:cap][:width] | landmark:<k>[:degree|farthest]");
    } else if (arg == "--faults") {
      fault_spec = flag_value(
          "--faults needs a spec: [stall:<p>][:fail:<p>][:slow:<p>:<us>]"
          "[:seed:<n>] or none");
    } else if (arg == "--metrics-out") {
      metrics_out = flag_value(
          "--metrics-out needs a path for the Prometheus text dump "
          "(\"-\" = stdout)");
    } else if (arg == "--trace-out") {
      trace_out = flag_value(
          "--trace-out needs a path for the chrome://tracing JSON dump");
    } else {
      positional.push_back(arg);
    }
  }
  // Spans record only while enabled; flipping the gate before the run makes
  // the whole driver run (submits, batch executions, oracle waves) visible.
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);
  const auto n = !positional.empty()
                     ? parse_spec_number<graph::NodeId>(positional[0],
                                                        positional[0])
                     : graph::NodeId{8192};
  const std::size_t num_batches =
      positional.size() > 1
          ? parse_spec_number<std::size_t>(positional[1], positional[1])
          : 12;
  const std::string workload_spec =
      positional.size() > 2 ? positional[2] : "zipf:1.1";
  const std::string admission_spec =
      positional.size() > 3 ? positional[3] : "unbounded";

  // Both specs go through their strict registries BEFORE the exclusivity
  // check, so a malformed spec reports as such rather than as a conflict.
  api::RouteServiceOptions options;
  options.admission = parse_admission(admission_spec);
  const bool mutating = mutation_spec != "none";
  dynamic::MutationStreamPtr stream;
  if (mutating) stream = dynamic::make_mutation_stream(mutation_spec);
  if (mutating && admission_spec != "unbounded") {
    throw std::invalid_argument(
        "--mutations " + mutation_spec + " conflicts with admission " +
        admission_spec +
        ": mutating runs collect each batch before the graph changes "
        "(closed loop), so bounded/shed admission never engages; use "
        "admission=unbounded");
  }
  if (mutating && oracle_spec != "auto") {
    throw std::invalid_argument(
        "--oracle " + oracle_spec + " conflicts with --mutations " +
        mutation_spec +
        ": a custom backend is built once on the static graph and cannot "
        "track mutations; use --oracle auto");
  }

  // Cache-oracle regime on purpose: n above the dense limit is where target
  // sharding earns its keep — and skewed demand (the zipf default) is where
  // one BFS serves the most pairs. The DynamicOracle applies the same
  // size policy (dense matrix <= 4096 nodes, LRU target cache above) and
  // additionally tracks graph mutations by epoch-stamped invalidation.
  Rng graph_rng(0x5eed);
  dynamic::DynamicGraph dyn(graph::family("torus2d").make(n, graph_rng));
  const graph::Graph& g = dyn.graph();
  dynamic::DynamicOracle oracle(dyn);
  // A non-"auto" spec swaps in a make_oracle backend for the whole run; the
  // exclusivity check above guarantees the graph stays static under it.
  std::unique_ptr<graph::DistanceOracle> custom_oracle;
  if (oracle_spec != "auto") {
    custom_oracle = graph::make_oracle(oracle_spec, g);
  }
  graph::DistanceOracle& dist =
      custom_oracle ? *custom_oracle
                    : static_cast<graph::DistanceOracle&>(oracle);
  // Deterministic chaos: the fault decorator wraps whatever oracle is
  // serving (dynamic or custom) WITHOUT owning it, so mutations keep
  // invalidating beneath the faults.
  const bool faulted = fault_spec != "none";
  std::unique_ptr<resilience::FaultyOracle> faulty;
  if (faulted) {
    faulty = std::make_unique<resilience::FaultyOracle>(
        static_cast<const graph::DistanceOracle&>(dist),
        resilience::FaultSpec::parse(split_spec(fault_spec), fault_spec));
  }
  graph::DistanceOracle& serving =
      faulty ? static_cast<graph::DistanceOracle&>(*faulty) : dist;
  Rng scheme_rng(0x5eed);
  const auto scheme = core::make_scheme("ball", g, scheme_rng);
  // Built over the SERVING oracle: a stall fault makes it inexact, and the
  // router factory then configures the greedy descent for bound-only rows.
  const auto router = routing::make_router("greedy", g, serving);
  // Failures may disconnect demand pairs; report them instead of aborting.
  options.tolerate_unreachable = mutating;
  // Degraded-mode chain for faulted runs: exact-path retries first, then a
  // landmark fallback (approximate but fault-free), and never an uncaught
  // fault — pairs whose row survives nothing are reported kFailed.
  std::unique_ptr<graph::DistanceOracle> fallback_oracle;
  std::unique_ptr<routing::Router> fallback_router;
  if (faulted) {
    fallback_oracle = graph::make_oracle("landmark:16", g);
    fallback_router = routing::make_router("greedy", g, *fallback_oracle);
    options.resilience.fallback_oracle = fallback_oracle.get();
    options.resilience.fallback_router = fallback_router.get();
    options.resilience.tolerate_faults = true;
  }
  // Shed and adaptive run in virtual time here: 50us of virtual service per
  // pair makes every drop decision a pure function of the arrival schedule.
  if (options.admission.kind == api::AdmissionPolicy::Kind::kShed ||
      options.admission.kind == api::AdmissionPolicy::Kind::kAdaptive) {
    options.virtual_pair_cost_seconds = 50e-6;
  }
  // Fold the service's counters into the process-wide registry so one
  // --metrics-out scrape sees the whole stack (service + oracle + BFS).
  options.metrics = &obs::default_registry();
  api::RouteService service(g, serving, scheme.get(), *router, options);

  const auto demand = workload::make_workload(workload_spec, g, Rng(2026));
  workload::TrafficOptions traffic;
  traffic.schedule = "burst:4:0.0";  // four simultaneous batches per wave
  traffic.batches = num_batches;
  traffic.batch_size = 256;
  traffic.keep_results = true;  // feeds the hop histogram below
  if (mutating) {
    traffic.dynamic_graph = &dyn;
    traffic.mutations = stream.get();
  }
  workload::TrafficDriver driver(service, *demand, traffic);

  std::cout << "route_server: torus2d n=" << g.num_nodes()
            << ", scheme=ball, router=greedy, workload=" << demand->name()
            << ", admission=" << admission_spec
            << ", mutations=" << mutation_spec
            << ", oracle=" << oracle_spec
            << ", faults=" << fault_spec << ", "
            << nav::global_pool().thread_count() << " pool threads\n\n";

  const auto report = driver.run(Rng(2026));
  std::cout << report.table().to_ascii();

  // Binned view of the hop distribution: the streaming-friendly variant of
  // the report's exact quantiles (Histogram::percentile interpolates inside
  // the crossing bin, so binned p95 tracks report.hops.p95).
  if (report.hops.count > 0) {
    Histogram hop_histogram(0.0, report.hops.max + 1.0,
                            std::min<std::size_t>(
                                12, static_cast<std::size_t>(
                                        report.hops.max) + 1));
    for (const auto& batch : report.results) {
      for (const auto& route : batch) {
        if (route.reached) {
          hop_histogram.add(static_cast<double>(route.steps));
        }
      }
    }
    std::cout << "\nhop distribution (binned p95 ~ "
              << Table::num(hop_histogram.percentile(0.95), 1) << "):\n"
              << hop_histogram.render(40);
  }

  std::cout << "\nhops: p50=" << Table::num(report.hops.p50, 1)
            << "  p95=" << Table::num(report.hops.p95, 1)
            << "  p99=" << Table::num(report.hops.p99, 1)
            << "  max=" << Table::num(report.hops.max, 0)
            << "\nsojourn ms: p50=" << Table::num(report.sojourn_ms.p50, 2)
            << "  p95=" << Table::num(report.sojourn_ms.p95, 2)
            << "  p99=" << Table::num(report.sojourn_ms.p99, 2) << "\n";
  std::cout << "admission: " << report.pairs_admitted << " admitted, "
            << report.pairs_shed << " shed, "
            << report.queue.blocked_submits << " blocked submits, peak queue "
            << report.queue.peak_queued_pairs << " pairs\n";
  if (faulted) {
    // Deterministic under a fixed seed and a virtual-time (or unbounded)
    // admission policy: every number is a pure function of the fault
    // schedule and the demand — the chaos-smoke CI job diffs this line
    // across two same-seed runs.
    std::cout << "resilience: " << faulty->injected_failures() << " injected "
              << "failures, " << report.queue.retries << " retries, "
              << report.queue.fallback_pairs << " fallback pairs, "
              << report.queue.degraded_pairs << " degraded, "
              << report.queue.failed_pairs << " failed, "
              << report.queue.deadline_breaches << " deadline breaches\n";
  }
  if (report.adaptive) {
    std::cout << "adaptive: window " << report.adaptive_window_pairs
              << " pairs, " << report.pairs_rejected << " pairs rejected, "
              << report.slo_breaches << " slo breaches, sojourn(v) p99 "
              << Table::num(report.sojourn_v_ms.p99, 2) << " ms, slo "
              << (report.p99_under_slo ? "met" : "missed") << "\n";
  }
  if (mutating) {
    const auto stats = oracle.stats();
    std::cout << "mutations: " << report.mutation_steps << " steps, "
              << report.mutation_events << " events applied, final epoch "
              << report.final_epoch << ", " << report.pairs_unreached
              << " pairs unreached\n";
    std::cout << "invalidation: " << stats.targets_scanned
              << " cached targets scanned, " << stats.targets_invalidated
              << " invalidated, " << stats.targets_retained << " retained, "
              << stats.rows_rebuilt << " rows rebuilt, " << stats.full_flushes
              << " full flushes\n";
  }
  const auto totals = service.totals();
  std::cout << "service totals: " << totals.batches << " batches, "
            << totals.pairs << " routes, "
            << Table::num(totals.seconds, 2) << "s batch execution, "
            << Table::num(static_cast<double>(totals.pairs) /
                              std::max(totals.seconds, 1e-9),
                          0)
            << " routes/sec\n";

  if (!metrics_out.empty()) {
    const auto snapshot = obs::default_registry().scrape();
    if (metrics_out == "-") {
      obs::write_prometheus(snapshot, std::cout);
    } else {
      std::ofstream out(metrics_out);
      if (!out) {
        throw std::invalid_argument("cannot open --metrics-out path: " +
                                    metrics_out);
      }
      obs::write_prometheus(snapshot, out);
      std::cout << "metrics written: " << metrics_out << "\n";
    }
  }
  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(false);
    std::ofstream out(trace_out);
    if (!out) {
      throw std::invalid_argument("cannot open --trace-out path: " +
                                  trace_out);
    }
    obs::Tracer::instance().write_chrome_trace(out);
    std::cout << "trace written: " << trace_out << " ("
              << obs::Tracer::instance().event_count() << " spans, "
              << obs::Tracer::instance().dropped_events() << " dropped)\n";
  }
  return 0;
} catch (const std::exception& error) {
  // Bad CLI arguments (unknown workload/admission spec, unreadable trace,
  // conflicting --mutations/admission combinations) surface as a one-line
  // error, matching sweep_cli.
  std::cerr << "error: " << error.what() << "\n";
  return 1;
}
