// route_server.cpp — the always-on batch routing engine, demonstrated.
//
// Models a routing service under sustained load: clients submit mixed-size
// batches of (source, target) queries against one augmented graph, the
// RouteService queues them on its service thread, shards each batch by
// target, and fans the shards across the thread pool. The driver keeps
// submitting while earlier batches execute — the "always-on" mode that
// Engine::route_many's one-shot API cannot express.
//
//   ./route_server [n] [batches]      (defaults: n=8192, batches=12)
//
// Output: one line per batch (size, distinct targets, hops served, latency)
// plus the cumulative service telemetry.
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "nav/nav.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const auto n = static_cast<graph::NodeId>(
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8192);
  const std::size_t num_batches =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;

  // Cache-oracle regime on purpose: n above the dense limit is where target
  // sharding earns its keep.
  auto engine = api::NavigationEngine::from_family("torus2d", n);
  engine.use_scheme("ball");
  api::RouteService service(engine);

  std::cout << "route_server: torus2d n=" << engine.graph().num_nodes()
            << ", scheme=ball, router=greedy, "
            << nav::global_pool().thread_count() << " pool threads\n\n";

  // Submit every batch up front; the service thread drains them FIFO while
  // we are still enqueueing — nothing here blocks until the .get() below.
  Rng workload(2026);
  std::vector<std::future<std::vector<routing::RouteResult>>> futures;
  for (std::size_t b = 0; b < num_batches; ++b) {
    const std::size_t batch_size = 64 << (b % 4);      // mixed sizes 64..512
    const std::size_t targets = 4 + 4 * (b % 5);       // mixed shard counts
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const auto t = static_cast<graph::NodeId>(
          random_index(workload, targets) * (engine.graph().num_nodes() /
                                             targets));
      auto s = static_cast<graph::NodeId>(
          random_index(workload, engine.graph().num_nodes()));
      if (s == t) s = (s + 1) % engine.graph().num_nodes();
      pairs.emplace_back(s, t);
    }
    futures.push_back(service.submit(std::move(pairs), Rng(b)));
  }

  Table table({"batch", "pairs", "targets", "mean hops", "max hops"});
  for (std::size_t b = 0; b < num_batches; ++b) {
    const auto results = futures[b].get();
    std::uint64_t total_steps = 0, max_steps = 0;
    for (const auto& r : results) {
      total_steps += r.steps;
      max_steps = std::max<std::uint64_t>(max_steps, r.steps);
    }
    table.add_row({Table::integer(b), Table::integer(results.size()),
                   Table::integer(4 + 4 * (b % 5)),
                   Table::num(static_cast<double>(total_steps) /
                                  static_cast<double>(results.size()),
                              2),
                   Table::integer(max_steps)});
  }
  std::cout << table.to_ascii();

  const auto totals = service.totals();
  std::cout << "\nservice totals: " << totals.batches << " batches, "
            << totals.pairs << " routes, "
            << Table::num(totals.seconds, 2) << "s batch execution, "
            << Table::num(static_cast<double>(totals.pairs) /
                              std::max(totals.seconds, 1e-9),
                          0)
            << " routes/sec\n";
  return 0;
}
