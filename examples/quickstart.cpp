// quickstart.cpp — the 60-second tour of navscheme.
//
// Builds a graph, augments it with the paper's schemes, routes greedily, and
// prints how many steps each scheme needs. Run it:  ./quickstart [n]
#include <cstdlib>
#include <iostream>

#include "core/scheme_factory.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/table.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const graph::NodeId n = argc > 1
      ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
      : 4096;

  // 1. A graph where the sqrt(n) barrier actually bites: the path.
  const graph::Graph g = graph::make_path(n);
  std::cout << "graph: " << g.summary()
            << ", diameter = " << graph::double_sweep_lower_bound(g) << "\n\n";

  // 2. A distance oracle (greedy routing compares distances in G).
  graph::TargetDistanceCache oracle(g);

  // 3. Augment + route with each scheme; estimate the greedy diameter.
  Rng rng(42);
  routing::TrialConfig trials;
  trials.num_pairs = 8;
  trials.resamples = 12;

  Table table({"scheme", "greedy diameter (est)", "vs diameter"});
  for (const auto& spec : {"none", "uniform", "ml", "ball"}) {
    auto scheme = core::make_scheme(spec, g, rng);
    const auto est = routing::estimate_greedy_diameter(
        g, scheme.get(), oracle, trials, rng.child(std::string(spec).size()));
    table.add_row({spec, Table::with_ci(est.max_mean_steps, est.max_ci_halfwidth, 1),
                   Table::num(est.max_mean_steps / static_cast<double>(n - 1), 3)});
  }
  std::cout << table.to_ascii() << "\n";
  std::cout << "Expected shape: none ~ n, uniform ~ sqrt(n), ml ~ polylog(n), "
               "ball ~ n^(1/3) polylog(n).\n";
  return 0;
}
