// quickstart.cpp — the 60-second tour of navscheme, via the nav::api facade.
//
// Builds a graph, augments it with the paper's schemes, routes greedily, and
// prints how many steps each scheme needs. Run it:  ./quickstart [n]
#include <cstdlib>
#include <iostream>

#include "nav/nav.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const graph::NodeId n = argc > 1
      ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
      : 4096;

  // 1. An engine on a graph where the sqrt(n) barrier actually bites: the
  //    path. The engine owns the distance oracle (auto-selected by size).
  auto engine = api::NavigationEngine::from_family("path", n);
  std::cout << "graph: " << engine.graph().summary() << ", diameter = "
            << graph::double_sweep_lower_bound(engine.graph()) << "\n\n";

  // 2. Augment + route with each scheme; estimate the greedy diameter.
  routing::TrialConfig trials;
  trials.num_pairs = 8;
  trials.resamples = 12;

  Table table({"scheme", "greedy diameter (est)", "vs diameter"});
  for (const auto& spec : {"none", "uniform", "ml", "ball"}) {
    engine.use_scheme(spec);
    const auto est = engine.estimate_diameter(trials, Rng(42));
    table.add_row({spec,
                   Table::with_ci(est.max_mean_steps, est.max_ci_halfwidth, 1),
                   Table::num(est.max_mean_steps / static_cast<double>(n - 1), 3)});
  }
  std::cout << table.to_ascii() << "\n";
  std::cout << "Expected shape: none ~ n, uniform ~ sqrt(n), ml ~ polylog(n), "
               "ball ~ n^(1/3) polylog(n).\n";

  // 3. One-liner single route under the best scheme, with a router swap:
  //    the same engine can route NoN-style (lookahead:1) for comparison.
  engine.use_scheme("ball");
  const auto plain = engine.route(0, n - 1, Rng(7));
  engine.use_router("lookahead:1");
  const auto non = engine.route(0, n - 1, Rng(7));
  std::cout << "\nball scheme, one route 0 -> " << n - 1 << ": greedy "
            << plain.steps << " hops (" << plain.long_links_used
            << " long), lookahead:1 " << non.steps << " hops ("
            << non.long_links_used << " long)\n";
  return 0;
}
