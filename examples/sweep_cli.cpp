// sweep_cli.cpp — run arbitrary experiment grids from the command line.
//
// The bench binaries pin the paper's experiment grids; this tool lets a user
// explore mutation × workload × scheme × router grids freely:
//
//   ./sweep_cli --family path --sizes 1024,4096,16384
//               --schemes uniform,ml,ball --routers greedy,lookahead:1
//               [--graphs file:karate.dimacs,dimacs:usa.gr]
//               [--oracle auto,cache:64:u16,landmark:16:farthest]
//               [--workloads uniform,zipf:1.1,adversarial]
//               [--mutations none,fail:0.05,churn:8]
//               --pairs 12 --resamples 16 [--seed 7]
//               [--csv out.csv] [--jsonl out.jsonl]
//               [--trajectory <id> [--out <dir>]]
//               [--metrics-out metrics.prom] [--trace-out trace.json]
//
// Prints the sweep table plus per-axis exponent fits; optionally
// writes CSV and/or JSON Lines for plotting and trajectory tooling. JSON
// Lines stream as cells finish, so long sweeps can be tailed.
// --graphs takes graph_source specs — family names and/or file-backed
// "file:<path>" / "dimacs:<path>" entries; --sizes may be omitted when
// every source is file-backed (the file decides n). --oracle sweeps
// make_oracle backends as a grid axis.
// --trajectory <id> additionally emits the sweep as a
// nav-bench-trajectory-v1 document BENCH_<id>.json (and refreshes the
// merged BENCH_all.json) — the same schema the bench harness writes, so
// scripts/compare_bench.py can diff a CLI sweep against bench baselines.
//
// --metrics-out scrapes the process-wide obs registry after the sweep and
// writes it in Prometheus text format ("-" = stdout); --trace-out enables
// NAV_TRACE span collection for the run and writes chrome://tracing JSON.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "nav/nav.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --graphs g1,g2,.. [--sizes n1,n2,..] [--schemes s1,s2,..]\n"
         "       [--family <name>] [--routers r1,r2,..]\n"
         "       [--workloads w1,w2,..] [--mutations m1,m2,..]\n"
         "       [--oracle o1,o2,..] [--pairs K] [--resamples R]\n"
         "       [--seed S] [--csv PATH] [--jsonl PATH]\n"
         "       [--trajectory ID [--out DIR]]\n"
         "       [--metrics-out PATH] [--trace-out PATH]\n\n"
         "graphs: a family name below, file:<path>, or dimacs:<path> "
         "(--sizes\n        required unless every source is file-backed)\n"
         "families: ";
  for (const auto& fam : nav::graph::all_families()) {
    std::cerr << fam.name << ' ';
  }
  std::cerr << "\nschemes: uniform ball ball-fixed:<k> ml ml-labelU "
               "ml-A-only ml-U-only ml-random-label kleinberg:<a> rank "
               "growth rewire:uniform none\n"
               "routers: greedy lookahead:<depth>\nworkloads: ";
  for (const auto& info : nav::workload::workload_catalog()) {
    std::cerr << info.spec << ' ';
  }
  std::cerr << "(\"uniform\" = the classic trial-pair selection)\n"
               "mutations: ";
  for (const auto& info : nav::dynamic::mutation_catalog()) {
    std::cerr << info.spec << ' ';
  }
  std::cerr << "(\"none\" = the static graph)\noracles: ";
  for (const auto& info : nav::graph::oracle_catalog()) {
    std::cerr << info.spec << ' ';
  }
  std::cerr << "(\"auto\" = the size-selected exact backend)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nav;
  std::vector<std::string> graphs;
  std::vector<graph::NodeId> sizes;
  std::vector<std::string> schemes = {"uniform"};
  std::vector<std::string> routers = {"greedy"};
  std::vector<std::string> workloads = {"uniform"};
  std::vector<std::string> mutations = {"none"};
  std::vector<std::string> oracles = {"auto"};
  std::size_t pairs = 12, resamples = 16;
  std::uint64_t seed = 0x5eed;
  std::string csv_path, jsonl_path, trajectory_id, out_dir = ".";
  std::string metrics_out, trace_out;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--family") {
      graphs.push_back(value);
    } else if (key == "--graphs") {
      for (auto& spec : split_csv(value)) graphs.push_back(std::move(spec));
    } else if (key == "--sizes") {
      for (const auto& s : split_csv(value)) {
        sizes.push_back(
            static_cast<graph::NodeId>(std::strtoul(s.c_str(), nullptr, 10)));
      }
    } else if (key == "--schemes") {
      schemes = split_csv(value);
    } else if (key == "--routers") {
      routers = split_csv(value);
    } else if (key == "--workloads") {
      workloads = split_csv(value);
    } else if (key == "--mutations") {
      mutations = split_csv(value);
    } else if (key == "--oracle") {
      oracles = split_csv(value);
    } else if (key == "--trajectory") {
      trajectory_id = value;
    } else if (key == "--out") {
      out_dir = value;
    } else if (key == "--pairs") {
      pairs = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "--resamples") {
      resamples = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--csv") {
      csv_path = value;
    } else if (key == "--jsonl") {
      jsonl_path = value;
    } else if (key == "--metrics-out") {
      metrics_out = value;
    } else if (key == "--trace-out") {
      trace_out = value;
    } else {
      std::cerr << "unknown option: " << key << "\n";
      usage(argv[0]);
      return 1;
    }
  }
  // File-backed sources carry their own n, so a sweep over only files may
  // omit --sizes; any family name in the mix still needs them.
  const bool all_file_backed =
      !graphs.empty() &&
      std::all_of(graphs.begin(), graphs.end(), graph::is_graph_spec);
  if (graphs.empty() || schemes.empty() ||
      (sizes.empty() && !all_file_backed)) {
    usage(argv[0]);
    return 1;
  }

  // Spans record only while the runtime gate is open; flip it before the
  // sweep so every oracle wave and parallel sweep lands in the ring buffers.
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  try {
    auto experiment = api::Experiment::graphs(graphs)
                          .sizes(sizes)
                          .workloads(workloads)
                          .schemes(schemes)
                          .routers(routers)
                          .mutations(mutations)
                          .oracles(oracles)
                          .pairs(pairs)
                          .resamples(resamples)
                          .seed(seed);
    std::ofstream jsonl_stream;
    std::unique_ptr<api::JsonLinesSink> jsonl;
    if (!jsonl_path.empty()) {
      jsonl_stream.open(jsonl_path);
      if (!jsonl_stream) {
        std::cerr << "error: cannot open " << jsonl_path << "\n";
        return 1;
      }
      jsonl = std::make_unique<api::JsonLinesSink>(jsonl_stream);
      experiment.stream_to(*jsonl);
    }
    const auto result = experiment.run();
    std::cout << result.table().to_ascii();
    std::cout << "\nexponent fits (greedy diameter ~ n^slope):\n"
              << result.fit_table().to_ascii();
    if (!csv_path.empty()) {
      result.table().save_csv(csv_path);
      std::cout << "csv written: " << csv_path << "\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "jsonl written: " << jsonl_path << "\n";
    }
    if (!trajectory_id.empty()) {
      // Same schema and writer the bench harness uses, so this document is
      // directly diffable against bench baselines by compare_bench.py.
      api::TrajectoryWriter traj(trajectory_id, "sweep_cli_" + graphs.front(),
                                 /*quick=*/false, out_dir);
      for (const auto& cell : result.cells) traj.add_cell(cell.record());
      if (traj.write_document()) traj.write_merged();
    }
    if (!metrics_out.empty()) {
      const auto snapshot = obs::default_registry().scrape();
      if (metrics_out == "-") {
        obs::write_prometheus(snapshot, std::cout);
      } else {
        std::ofstream out(metrics_out);
        if (!out) {
          std::cerr << "error: cannot open " << metrics_out << "\n";
          return 1;
        }
        obs::write_prometheus(snapshot, out);
        std::cout << "metrics written: " << metrics_out << "\n";
      }
    }
    if (!trace_out.empty()) {
      obs::Tracer::instance().set_enabled(false);
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "error: cannot open " << trace_out << "\n";
        return 1;
      }
      obs::Tracer::instance().write_chrome_trace(out);
      std::cout << "trace written: " << trace_out << " ("
                << obs::Tracer::instance().event_count() << " spans)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
