// sweep_cli.cpp — run arbitrary experiment grids from the command line.
//
// The bench binaries pin the paper's experiment grids; this tool lets a user
// explore freely:
//
//   ./sweep_cli --family path --sizes 1024,4096,16384 \
//               --schemes uniform,ml,ball --pairs 12 --resamples 16 \
//               [--seed 7] [--csv out.csv]
//
// Prints the sweep table plus per-scheme exponent fits; optionally writes
// CSV for plotting.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "routing/experiment.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --family <name> --sizes n1,n2,.. --schemes s1,s2,..\n"
         "       [--pairs K] [--resamples R] [--seed S] [--csv PATH]\n\n"
         "families: ";
  for (const auto& fam : nav::graph::all_families()) {
    std::cerr << fam.name << ' ';
  }
  std::cerr << "\nschemes: uniform ball ball-fixed:<k> ml ml-labelU "
               "ml-A-only ml-U-only ml-random-label kleinberg:<a> rank none\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nav;
  routing::SweepConfig config;
  config.trials.num_pairs = 12;
  config.trials.resamples = 16;
  std::string csv_path;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--family") {
      config.family = value;
    } else if (key == "--sizes") {
      for (const auto& s : split_csv(value)) {
        config.sizes.push_back(
            static_cast<graph::NodeId>(std::strtoul(s.c_str(), nullptr, 10)));
      }
    } else if (key == "--schemes") {
      config.schemes = split_csv(value);
    } else if (key == "--pairs") {
      config.trials.num_pairs = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "--resamples") {
      config.trials.resamples = std::strtoul(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--csv") {
      csv_path = value;
    } else {
      std::cerr << "unknown option: " << key << "\n";
      usage(argv[0]);
      return 1;
    }
  }
  if (config.family.empty() || config.sizes.empty() || config.schemes.empty()) {
    usage(argv[0]);
    return 1;
  }

  try {
    const auto rows = routing::run_sweep(config);
    std::cout << routing::sweep_table(rows).to_ascii();
    std::cout << "\nexponent fits (greedy diameter ~ n^slope):\n"
              << routing::fit_table(routing::fit_exponents(rows)).to_ascii();
    if (!csv_path.empty()) {
      routing::sweep_table(rows).save_csv(csv_path);
      std::cout << "csv written: " << csv_path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
