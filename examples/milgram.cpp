// milgram.cpp — a Milgram "six degrees" experiment in silico.
//
// Milgram asked people in Nebraska to forward a letter toward a Boston
// stockbroker through acquaintances. The augmented-graph model of that
// experiment: local acquaintances form a 2D torus (geography), each person
// knows one random distant contact, and everybody forwards the letter to
// whichever acquaintance is closest to the target.
//
// This example measures the resulting chain-length distribution under three
// long-range-contact models:
//   * uniform       — distance-blind random acquaintance (Peleg O(sqrt n));
//   * kleinberg a=2 — the classical navigable exponent (O(log^2 n));
//   * ball          — this paper's universal Õ(n^{1/3}) scheme.
// All chains for one model are dispatched as a single engine.route_many
// batch over the thread pool.
//
// Usage: ./milgram [side=64] [chains=400]
#include <cstdlib>
#include <iostream>

#include "nav/nav.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const graph::NodeId side = argc > 1
      ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
      : 64;
  const int chains = argc > 2 ? std::atoi(argv[2]) : 400;

  api::EngineOptions options;
  options.cache_capacity = 16;
  api::NavigationEngine engine(graph::make_torus2d(side, side), options);
  const graph::NodeId n = engine.graph().num_nodes();
  std::cout << "acquaintance torus: " << engine.graph().summary() << " (side "
            << side << ")\n\n";

  Rng rng(1967);  // the year of the Milgram paper
  auto draw_pairs = [&](Rng pair_rng) {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    for (int c = 0; c < chains; ++c) {
      const auto s = random_index(pair_rng, n);
      auto t = random_index(pair_rng, n);
      if (t == s) t = (t + 1) % n;
      pairs.emplace_back(s, t);
    }
    return pairs;
  };

  Table table({"acquaintance model", "median chain", "mean chain", "p95",
               "longest"});
  auto run_model = [&](core::SchemePtr scheme) {
    engine.use_scheme(std::move(scheme));
    const auto pairs = draw_pairs(rng.child(engine.scheme_spec().size()));
    const auto results = engine.route_many(
        pairs, rng.child(engine.scheme_spec().size()).child(0xba7c4));
    RunningStats stats;
    std::vector<double> lengths;
    for (const auto& result : results) {
      stats.add(result.steps);
      lengths.push_back(result.steps);
    }
    table.add_row({engine.scheme_spec(),
                   Table::num(percentile(lengths, 0.5), 1),
                   Table::num(stats.mean(), 1),
                   Table::num(percentile(lengths, 0.95), 1),
                   Table::num(stats.max(), 0)});
    return results;
  };

  run_model(std::make_unique<core::UniformScheme>(engine.graph()));
  const auto kleinberg_results =
      run_model(std::make_unique<core::TorusKleinbergScheme>(side, 2.0));
  run_model(std::make_unique<core::BallScheme>(engine.graph()));
  std::cout << table.to_ascii() << "\n";

  // The famous histogram, for the navigable (Kleinberg) world.
  std::cout << "chain-length histogram, kleinberg a=2 world:\n";
  Histogram hist(0.0, 40.0, 10);
  for (const auto& result : kleinberg_results) hist.add(result.steps);
  std::cout << hist.render(46);
  std::cout << "\n(reference: Milgram's completed chains averaged ~6 hops at "
               "US population scale)\n";
  return 0;
}
