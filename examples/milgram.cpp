// milgram.cpp — a Milgram "six degrees" experiment in silico.
//
// Milgram asked people in Nebraska to forward a letter toward a Boston
// stockbroker through acquaintances. The augmented-graph model of that
// experiment: local acquaintances form a 2D torus (geography), each person
// knows one random distant contact, and everybody forwards the letter to
// whichever acquaintance is closest to the target.
//
// This example measures the resulting chain-length distribution under three
// long-range-contact models:
//   * uniform       — distance-blind random acquaintance (Peleg O(sqrt n));
//   * kleinberg a=2 — the classical navigable exponent (O(log^2 n));
//   * ball          — this paper's universal Õ(n^{1/3}) scheme.
//
// Usage: ./milgram [side=64] [chains=400]
#include <cstdlib>
#include <iostream>

#include "core/ball_scheme.hpp"
#include "core/kleinberg_scheme.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"
#include "routing/greedy_router.hpp"
#include "runtime/stats.hpp"
#include "runtime/table.hpp"

int main(int argc, char** argv) {
  using namespace nav;
  const graph::NodeId side = argc > 1
      ? static_cast<graph::NodeId>(std::strtoul(argv[1], nullptr, 10))
      : 64;
  const int chains = argc > 2 ? std::atoi(argv[2]) : 400;

  const auto world = graph::make_torus2d(side, side);
  const graph::NodeId n = world.num_nodes();
  std::cout << "acquaintance torus: " << world.summary() << " (side " << side
            << ")\n\n";

  graph::TargetDistanceCache oracle(world, 16);
  routing::GreedyRouter router(world, oracle);

  core::UniformScheme uniform(world);
  core::TorusKleinbergScheme kleinberg(side, 2.0);
  core::BallScheme ball(world);
  const core::AugmentationScheme* schemes[] = {&uniform, &kleinberg, &ball};

  Rng rng(1967);  // the year of the Milgram paper
  Table table({"acquaintance model", "median chain", "mean chain", "p95",
               "longest"});
  for (const auto* scheme : schemes) {
    RunningStats stats;
    std::vector<double> lengths;
    Rng chain_rng = rng.child(scheme->name().size());
    for (int c = 0; c < chains; ++c) {
      const auto s = random_index(chain_rng, n);
      auto t = random_index(chain_rng, n);
      if (t == s) t = (t + 1) % n;
      Rng trial = chain_rng.child(static_cast<std::uint64_t>(c));
      const auto result = router.route(s, t, scheme, trial);
      stats.add(result.steps);
      lengths.push_back(result.steps);
    }
    table.add_row({scheme->name(), Table::num(percentile(lengths, 0.5), 1),
                   Table::num(stats.mean(), 1),
                   Table::num(percentile(lengths, 0.95), 1),
                   Table::num(stats.max(), 0)});
  }
  std::cout << table.to_ascii() << "\n";

  // The famous histogram, for the navigable (Kleinberg) world.
  std::cout << "chain-length histogram, kleinberg a=2 world:\n";
  Histogram hist(0.0, 40.0, 10);
  Rng hist_rng = rng.child(0x415);
  for (int c = 0; c < chains; ++c) {
    const auto s = random_index(hist_rng, n);
    auto t = random_index(hist_rng, n);
    if (t == s) t = (t + 1) % n;
    Rng trial = hist_rng.child(static_cast<std::uint64_t>(c));
    hist.add(router.route(s, t, &kleinberg, trial).steps);
  }
  std::cout << hist.render(46);
  std::cout << "\n(reference: Milgram's completed chains averaged ~6 hops at "
               "US population scale)\n";
  return 0;
}
