// navigability_report.cpp — a full navigability report for any graph.
//
// Given a graph (a named generator family, or a file in the nav-graph
// format), the report prints:
//   1. basic structure (n, m, degree, diameter bound);
//   2. the decomposition portfolio's best pathshape certificate, i.e. the
//      parameter driving Theorem 2's O(ps · log² n) bound;
//   3. the measured greedy diameter under every standard scheme, next to the
//      paper's predicted bound for that scheme.
//
// Usage:
//   ./navigability_report family <name> [n=4096]     e.g. family comb 4096
//   ./navigability_report file <path>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "nav/nav.hpp"

namespace {

std::string predicted_bound(const std::string& scheme, double n, double ps) {
  const double log_n = std::log2(n);
  if (scheme == "uniform") {
    return "O(sqrt n) ~ " + nav::Table::num(std::sqrt(n), 0);
  }
  if (scheme == "ml") {
    const double poly = ps * log_n * log_n;
    return "O(min{ps log^2 n, sqrt n}) ~ " +
           nav::Table::num(std::min(poly, std::sqrt(n)), 0);
  }
  if (scheme == "ball") {
    return "~O(n^1/3) ~ " + nav::Table::num(std::cbrt(n) * log_n, 0);
  }
  return "n/a";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nav;
  if (argc < 3) {
    std::cerr << "usage: " << argv[0] << " family <name> [n] | file <path>\n";
    std::cerr << "families:";
    for (const auto& f : graph::all_families()) std::cerr << ' ' << f.name;
    std::cerr << "\n";
    return 1;
  }

  const std::uint64_t seed = 2007;  // SPAA 2007
  api::EngineOptions options;
  options.cache_capacity = 32;
  std::string source;
  std::optional<api::NavigationEngine> engine;
  if (std::string(argv[1]) == "family") {
    const graph::NodeId n = argc > 3
        ? static_cast<graph::NodeId>(std::strtoul(argv[3], nullptr, 10))
        : 4096;
    engine.emplace(
        api::NavigationEngine::from_family(argv[2], n, seed, options));
    source = std::string(argv[2]);
  } else if (std::string(argv[1]) == "file") {
    engine.emplace(api::NavigationEngine::from_file(argv[2], options));
    source = argv[2];
  } else {
    std::cerr << "unknown mode: " << argv[1] << "\n";
    return 1;
  }
  const auto& g = engine->graph();

  std::cout << "== navigability report: " << source << " ==\n";
  std::cout << g.summary() << ", max degree " << g.max_degree()
            << ", diameter >= " << graph::double_sweep_lower_bound(g) << "\n\n";

  // Pathshape certificate (Theorem 2's parameter).
  const auto shaped = decomp::best_path_decomposition(g);
  std::cout << "pathshape certificate: shape <= " << shaped.measures.shape
            << " via '" << shaped.method << "' (" << shaped.measures.num_bags
            << " bags, width " << shaped.measures.width << ", length "
            << shaped.measures.length << ")\n\n";

  routing::TrialConfig trials;
  trials.num_pairs = 8;
  trials.resamples = 8;

  Table table({"scheme", "measured greedy diameter", "paper bound (approx)"});
  const double n = static_cast<double>(g.num_nodes());
  for (const auto& spec : core::standard_scheme_specs()) {
    engine->use_scheme(spec, seed);
    const auto est =
        engine->estimate_diameter(trials, Rng(std::string(spec).size()));
    table.add_row({spec,
                   Table::with_ci(est.max_mean_steps, est.max_ci_halfwidth, 1),
                   predicted_bound(
                       spec, n, static_cast<double>(shaped.measures.shape))});
  }
  std::cout << table.to_ascii();
  return 0;
}
